//! The assembled QBH system.
//!
//! Wraps the `hum-core` engine with the music-specific plumbing: melody →
//! time series rendering (§3.2), pitch-series normal forms (§3.3), audio
//! ingestion through the pitch tracker (§3.1), and provenance-aware results
//! (which song, which phrase).

use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};

use hum_audio::{track_pitch, PitchTrackerConfig};
use hum_core::batch::BatchOptions;
use hum_core::dtw::band_for_warping_width;
use hum_core::engine::{
    check_finite, DtwIndexEngine, EngineConfig, EngineError, EngineStats, QueryOutcome,
    QueryRequest, QueryScratch,
};
use hum_core::normal::NormalForm;
use hum_core::obs::{Metric, MetricsSink, QueryTrace};
use hum_core::plan::{plan_transform, record_plan, PlanFamily, PlannerOptions, TransformPlan};
use hum_core::segment::{query_segmented, query_segmented_batch, SegmentMeta, SegmentUnit};
use hum_core::session::QuerySession;
use hum_core::shard::ShardedEngine;
use hum_core::transform::dft::Dft;
use hum_core::transform::dwt::Dwt;
use hum_core::transform::paa::{KeoghPaa, NewPaa};
use hum_core::transform::svd::SvdTransform;
use hum_core::transform::EnvelopeTransform;
use hum_index::{GridFile, LinearScan, RStarTree, SpatialIndex};

use crate::corpus::MelodyDatabase;
use crate::storage::StorageError;
use crate::store::{self, Manifest, SegmentEntry, SegmentRef};

/// Which envelope transform the index uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// The paper's improved PAA envelope transform (default).
    NewPaa,
    /// Keogh's original PAA envelope transform (comparison baseline).
    KeoghPaa,
    /// Truncated Fourier features.
    Dft,
    /// Truncated Haar wavelet features.
    Dwt,
    /// Data-adaptive SVD features (fitted on the database).
    Svd,
}

impl TransformKind {
    /// The plannable [`PlanFamily`] for this kind, or `None` for SVD: a
    /// data-fitted basis cannot be reconstructed from a `(family, dims)`
    /// plan, so the planner never proposes it.
    pub fn plan_family(self) -> Option<PlanFamily> {
        match self {
            TransformKind::NewPaa => Some(PlanFamily::NewPaa),
            TransformKind::KeoghPaa => Some(PlanFamily::KeoghPaa),
            TransformKind::Dft => Some(PlanFamily::Dft),
            TransformKind::Dwt => Some(PlanFamily::Dwt),
            TransformKind::Svd => None,
        }
    }
}

/// How the system picks its envelope transform: pinned by the caller, or
/// measured per corpus by the build-time planner ([`hum_core::plan`]).
///
/// `Auto` exists only at build/create time: every persisted artifact
/// (snapshot or store manifest) carries the *resolved* `Fixed` kind plus
/// the [`TransformPlan`] evidence in its own checksummed section, so a
/// reopened index can never silently re-plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransformChoice {
    /// Use exactly this transform.
    Fixed(TransformKind),
    /// Measure the plannable families on a seeded corpus sample at build
    /// time and use the tightness-maximizing one (see
    /// [`hum_core::plan::plan_transform`]).
    Auto(PlannerOptions),
}

impl From<TransformKind> for TransformChoice {
    fn from(kind: TransformKind) -> Self {
        TransformChoice::Fixed(kind)
    }
}

/// The engine-constructable kind a plan family maps back to.
fn kind_for_family(family: PlanFamily) -> TransformKind {
    match family {
        PlanFamily::NewPaa => TransformKind::NewPaa,
        PlanFamily::KeoghPaa => TransformKind::KeoghPaa,
        PlanFamily::Dft => TransformKind::Dft,
        PlanFamily::Dwt => TransformKind::Dwt,
    }
}

/// Which spatial index backend stores the feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// R\*-tree (the paper's choice).
    RStar,
    /// Grid file.
    Grid,
    /// Linear scan baseline.
    Linear,
}

/// System configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QbhConfig {
    /// Canonical normal-form length (the paper's large-database experiments
    /// use 128).
    pub normal_length: usize,
    /// Reduced feature dimensionality (the paper indexes 8 dimensions).
    pub feature_dims: usize,
    /// Time-series samples per beat when rendering database melodies.
    pub samples_per_beat: usize,
    /// Default warping width δ = (2k+1)/n for queries.
    pub warping_width: f64,
    /// Envelope transform choice: a pinned [`TransformKind`] or
    /// [`TransformChoice::Auto`] to let the build-time planner pick one.
    pub transform: TransformChoice,
    /// Index backend choice.
    pub backend: Backend,
    /// Page size in bytes for the backend.
    pub page_bytes: usize,
    /// Number of corpus shards for scatter-gather serving (1 = monolithic).
    /// Matches are bit-identical at every shard count; see
    /// [`hum_core::shard`] for the determinism contract.
    pub shards: usize,
}

impl Default for QbhConfig {
    fn default() -> Self {
        QbhConfig {
            normal_length: 128,
            feature_dims: 8,
            samples_per_beat: 4,
            warping_width: 0.1,
            transform: TransformChoice::Fixed(TransformKind::NewPaa),
            backend: Backend::RStar,
            page_bytes: 4096,
            shards: 1,
        }
    }
}

impl QbhConfig {
    /// The pinned transform kind, or `None` while the choice is still
    /// [`TransformChoice::Auto`]. Persisted configurations are always
    /// resolved, so loaded snapshots and opened stores always return
    /// `Some`.
    pub fn fixed_transform(&self) -> Option<TransformKind> {
        match self.transform {
            TransformChoice::Fixed(kind) => Some(kind),
            TransformChoice::Auto(_) => None,
        }
    }
}

/// The typed rejection for persisting or instantiating an unresolved
/// `Auto` transform choice: every path that builds engines or writes
/// artifacts must see a planner-resolved configuration.
fn auto_unresolved_error() -> StorageError {
    StorageError::Unrepresentable(
        "TransformChoice::Auto must be resolved by the transform planner before engines are \
         built or configurations persisted; build paths do this automatically, store creation \
         needs a planning sample (QbhSystem::try_create_store_planned)"
            .into(),
    )
}

/// One retrieval hit with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct QbhMatch {
    /// Database melody id.
    pub id: u64,
    /// Source song index.
    pub song: usize,
    /// Phrase index within the song.
    pub phrase: usize,
    /// Exact band-constrained DTW distance to the query's normal form.
    pub distance: f64,
}

/// Ranked retrieval results plus work counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QbhResults {
    /// Matches sorted by ascending DTW distance.
    pub matches: Vec<QbhMatch>,
    /// Engine counters for the query.
    pub stats: EngineStats,
}

/// The engine type the system assembles: a sharded scatter-gather engine
/// over trait objects for the configured transform and backend, `Send +
/// Sync` so batched queries can fan out across threads. With
/// [`QbhConfig::shards`]` == 1` (the default) the single shard *is* the
/// monolithic engine.
pub type QbhEngine =
    ShardedEngine<Box<dyn EnvelopeTransform + Send + Sync>, Box<dyn SpatialIndex + Send + Sync>>;

/// The storage-unit view the system fans queries over (see
/// [`hum_core::segment`]).
type QbhUnit<'a> =
    SegmentUnit<'a, Box<dyn EnvelopeTransform + Send + Sync>, Box<dyn SpatialIndex + Send + Sync>>;

/// One immutable on-disk segment, resident in memory: its own sharded
/// engine over the segment's live (non-tombstoned) melodies, plus pruning
/// metadata and the full id list from the segment file (tombstoned ids
/// included, so manifest counts stay consistent on rewrite).
struct StoreSegment {
    id: u64,
    engine: QbhEngine,
    meta: SegmentMeta,
    ids: Vec<u64>,
}

impl StoreSegment {
    /// The manifest entry for this segment: the *file's* melody count
    /// (tombstoned entries included), not the live engine's.
    fn to_ref(&self) -> SegmentRef {
        SegmentRef { id: self.id, count: self.ids.len() as u64 }
    }
}

/// Operational knobs for a store-backed system; not part of the on-disk
/// format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Memtable melody count at which [`QbhSystem::needs_flush`] trips
    /// (flushes are otherwise explicit; the memtable may exceed this
    /// between maintenance ticks).
    pub memtable_capacity: usize,
    /// Segment count at which [`QbhSystem::needs_compaction`] trips.
    pub compact_at: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { memtable_capacity: 1024, compact_at: 4 }
    }
}

/// Mutable bookkeeping for a store-backed system.
struct StoreState {
    dir: PathBuf,
    options: StoreOptions,
    /// Removed-but-still-on-disk melody ids; cleared by compaction.
    tombstones: BTreeSet<u64>,
    /// Next segment file id (strictly greater than every live segment).
    next_segment_id: u64,
    /// Ids currently resident only in the memtable (not yet durable).
    memtable_ids: BTreeSet<u64>,
    flushes: u64,
    compactions: u64,
    bytes_written: u64,
}

/// A snapshot of store-backed storage counters, for operators and the
/// ingest benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Immutable segments currently live.
    pub segments: usize,
    /// Melodies in the memtable (not yet durable).
    pub memtable_len: usize,
    /// Removed ids awaiting compaction.
    pub tombstones: usize,
    /// Flushes performed by this instance.
    pub flushes: u64,
    /// Compactions performed by this instance.
    pub compactions: u64,
    /// Bytes written to segment and manifest files by this instance.
    pub bytes_written: u64,
    /// The planned transform family, when the store carries plan evidence.
    pub plan_family: Option<PlanFamily>,
    /// The planned reduced dimension (0 when no plan is persisted).
    pub plan_dims: usize,
    /// The plan's measured mean tightness in parts-per-million (0 when no
    /// plan is persisted), matching `planner.tightness_ppm`.
    pub plan_tightness_ppm: u64,
}

/// What a [`QbhSystem::maintain`] call actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreMaintenance {
    /// A memtable flush ran.
    pub flushed: bool,
    /// A compaction ran.
    pub compacted: bool,
}

/// Builds the spatial index backend for one engine shard.
fn make_index(config: &QbhConfig) -> Box<dyn SpatialIndex + Send + Sync> {
    match config.backend {
        Backend::RStar => {
            Box::new(RStarTree::with_page_size(config.feature_dims, config.page_bytes))
        }
        Backend::Grid => {
            Box::new(GridFile::with_params(config.feature_dims, 8, 1024, config.page_bytes))
        }
        Backend::Linear => {
            Box::new(LinearScan::with_page_size(config.feature_dims, config.page_bytes))
        }
    }
}

/// The dimension grid the planner measures: the configured `feature_dims`
/// plus one octave down and one up, filtered to dimensions the page layout
/// can hold (mirroring `validate_config`'s fan-out floor). Families that
/// cannot realize a given dimension (PAA divisibility, DWT power-of-two
/// input) are filtered per family inside the planner itself.
fn planner_dims_grid(config: &QbhConfig) -> Vec<usize> {
    let base = config.feature_dims.max(1);
    let mut grid: Vec<usize> = [base / 2, base, base * 2]
        .into_iter()
        .filter(|&d| d >= 1 && d <= config.normal_length)
        .filter(|&d| config.page_bytes / (d * 8 + 8) >= 4)
        .collect();
    grid.sort_unstable();
    grid.dedup();
    grid
}

/// The typed mismatch between persisted plan evidence and the configuration
/// it rode in with: the plan must describe exactly the transform the
/// artifact was built under, or a reopen could silently serve an index the
/// evidence never measured.
fn validate_plan_against_config(
    plan: &TransformPlan,
    config: &QbhConfig,
) -> Result<(), StorageError> {
    let Some(kind) = config.fixed_transform() else {
        return Err(auto_unresolved_error());
    };
    if kind.plan_family() != Some(plan.family) {
        return Err(StorageError::Corrupt(format!(
            "persisted plan chose {} but the configuration stores {kind:?}",
            plan.family.name()
        )));
    }
    if plan.dims != config.feature_dims {
        return Err(StorageError::Corrupt(format!(
            "persisted plan chose {} dims but the configuration stores {}",
            plan.dims, config.feature_dims
        )));
    }
    if plan.input_len != config.normal_length {
        return Err(StorageError::Corrupt(format!(
            "persisted plan measured input length {} but the configuration stores {}",
            plan.input_len, config.normal_length
        )));
    }
    Ok(())
}

/// The typed rejection for data-adaptive transforms in store mode.
fn svd_store_error() -> StorageError {
    StorageError::Unrepresentable(
        "SVD features are fitted to a corpus snapshot and cannot back an \
         incremental store; choose NewPaa, KeoghPaa, Dft, or Dwt"
            .into(),
    )
}

/// Builds an empty engine for one storage unit (memtable or segment) of a
/// store-backed system. Every unit uses `config.shards`, so the single-unit
/// case is byte-for-byte the monolithic engine.
///
/// # Errors
/// [`StorageError::Unrepresentable`] for [`TransformKind::Svd`]: a
/// data-adaptive basis cannot be fitted on an empty memtable, and refitting
/// per segment would break the bit-identity contract.
fn store_engine(config: &QbhConfig) -> Result<QbhEngine, StorageError> {
    let Some(kind) = config.fixed_transform() else {
        return Err(auto_unresolved_error());
    };
    let mut shards = Vec::with_capacity(config.shards.max(1));
    for _ in 0..config.shards.max(1) {
        let transform: Box<dyn EnvelopeTransform + Send + Sync> = match kind {
            TransformKind::NewPaa => {
                Box::new(NewPaa::new(config.normal_length, config.feature_dims))
            }
            TransformKind::KeoghPaa => {
                Box::new(KeoghPaa::new(config.normal_length, config.feature_dims))
            }
            TransformKind::Dft => Box::new(Dft::new(config.normal_length, config.feature_dims)),
            TransformKind::Dwt => Box::new(Dwt::new(config.normal_length, config.feature_dims)),
            TransformKind::Svd => return Err(svd_store_error()),
        };
        shards.push(DtwIndexEngine::new(transform, make_index(config), EngineConfig::default()));
    }
    Ok(QbhEngine::new(shards))
}

/// A built query-by-humming system.
///
/// Storage-wise the system is a one-level LSM tree: a mutable **memtable**
/// engine absorbing live inserts, over zero or more immutable **segments**
/// (each a [`StoreSegment`] with its own engine). Every query fans over all
/// units through [`hum_core::segment::query_segmented`] and k-way-merges
/// the per-unit hits, so matches are bit-identical to a monolithic engine
/// over the union corpus at every segment count, shard count, and thread
/// count. Systems built in memory ([`QbhSystem::build`]) have exactly one
/// unit (the memtable) and behave as before; store-backed systems
/// ([`QbhSystem::try_create_store`] / [`QbhSystem::try_open_store`]) add
/// the durable segment lifecycle ([`QbhSystem::flush`],
/// [`QbhSystem::compact`], [`QbhSystem::maintain`]).
pub struct QbhSystem {
    memtable: QbhEngine,
    segments: Vec<StoreSegment>,
    normal: NormalForm,
    band: usize,
    config: QbhConfig,
    // Keyed by melody id (not a Vec indexed by id): live inserts may use
    // arbitrary ids, and removals leave holes.
    provenance: HashMap<u64, (usize, usize)>,
    /// Records queries (the engines record their own inserts/removals).
    metrics: MetricsSink,
    store: Option<StoreState>,
    /// The transform plan that produced this configuration, when the
    /// system was built or opened under [`TransformChoice::Auto`]. Carried
    /// through every manifest rewrite so the evidence survives flushes,
    /// compactions, and reopens.
    plan: Option<TransformPlan>,
}

impl QbhSystem {
    /// Builds the system over a melody database.
    ///
    /// With [`TransformChoice::Auto`] the transform planner runs *once*
    /// over the rendered normal forms — the same discipline as the SVD
    /// fit-once-then-clone below — so every shard (and every shard count)
    /// indexes under the identical resolved transform.
    ///
    /// # Panics
    /// Panics on an empty database or a configuration the chosen transform
    /// rejects (e.g. PAA dims not dividing the normal length).
    pub fn build(db: &MelodyDatabase, config: &QbhConfig) -> Self {
        assert!(!db.is_empty(), "cannot build over an empty melody database");
        let normal = NormalForm::with_length(config.normal_length);

        let normals: Vec<Vec<f64>> = db
            .entries()
            .iter()
            .map(|e| normal.apply(&e.melody().to_time_series(config.samples_per_beat)))
            .collect();

        let (config, plan) = match config.transform {
            TransformChoice::Fixed(_) => (*config, None),
            TransformChoice::Auto(options) => {
                Self::plan_over_normals(config, &normals, options, &MetricsSink::Disabled)
                    .unwrap_or_else(|e| panic!("{e}"))
            }
        };
        let config = &config;

        // SVD is data-adaptive: fit it *once* on the same global sample every
        // shard count sees, then clone the fitted basis into each shard.
        // Feature vectors are therefore shard-count-invariant, which the
        // bit-identical-results contract depends on.
        let mut svd: Option<SvdTransform> = None;
        let mut make_transform = || -> Box<dyn EnvelopeTransform + Send + Sync> {
            match config.transform {
                TransformChoice::Auto(_) => {
                    // Resolved right above; the arm exists only because the
                    // type does not encode the resolution.
                    panic!("TransformChoice::Auto survived planner resolution in build")
                }
                TransformChoice::Fixed(TransformKind::NewPaa) => {
                    Box::new(NewPaa::new(config.normal_length, config.feature_dims))
                }
                TransformChoice::Fixed(TransformKind::KeoghPaa) => {
                    Box::new(KeoghPaa::new(config.normal_length, config.feature_dims))
                }
                TransformChoice::Fixed(TransformKind::Dft) => {
                    Box::new(Dft::new(config.normal_length, config.feature_dims))
                }
                TransformChoice::Fixed(TransformKind::Dwt) => {
                    Box::new(Dwt::new(config.normal_length, config.feature_dims))
                }
                TransformChoice::Fixed(TransformKind::Svd) => {
                    let fitted = svd.get_or_insert_with(|| {
                        let sample: Vec<Vec<f64>> =
                            normals.iter().take(500).cloned().collect();
                        SvdTransform::fit(&sample, config.feature_dims)
                    });
                    Box::new(fitted.clone())
                }
            }
        };
        let mut engine = QbhEngine::build(config.shards.max(1), |_| {
            DtwIndexEngine::new(make_transform(), make_index(config), EngineConfig::default())
        });
        let mut provenance = HashMap::with_capacity(db.len());
        for (entry, nf) in db.entries().iter().zip(normals) {
            engine.insert(entry.id(), nf);
            provenance.insert(entry.id(), (entry.song(), entry.phrase()));
        }
        QbhSystem {
            memtable: engine,
            segments: Vec::new(),
            normal,
            band: band_for_warping_width(config.warping_width, config.normal_length),
            config: *config,
            provenance,
            metrics: MetricsSink::Disabled,
            store: None,
            plan,
        }
    }

    /// Resolves the configured [`TransformChoice`] against a sample of raw
    /// (hummed-scale) pitch series: a no-op for `Fixed`, and one planner
    /// run over the sample's normal forms for `Auto`. Returns the resolved
    /// configuration — `transform` pinned, `feature_dims` set to the plan's
    /// dimension — plus the plan evidence. The planner decision is recorded
    /// into `metrics` (see [`hum_core::plan::record_plan`]).
    ///
    /// # Errors
    /// [`StorageError::Unrepresentable`] when planning fails (no series,
    /// mismatched lengths, or no family supports the dimension grid).
    pub fn resolve_transform(
        config: &QbhConfig,
        sample_series: &[Vec<f64>],
        metrics: &MetricsSink,
    ) -> Result<(QbhConfig, Option<TransformPlan>), StorageError> {
        match config.transform {
            TransformChoice::Fixed(_) => Ok((*config, None)),
            TransformChoice::Auto(options) => {
                let normal = NormalForm::with_length(config.normal_length);
                let normals: Vec<Vec<f64>> = sample_series
                    .iter()
                    .filter(|s| !s.is_empty())
                    .map(|s| normal.apply(s))
                    .collect();
                Self::plan_over_normals(config, &normals, options, metrics)
            }
        }
    }

    /// The planner invocation shared by every `Auto` entry point: measures
    /// the dimension grid derived from the configured `feature_dims` over
    /// already-rendered normal forms and pins the winning `(family, dims)`
    /// into the returned configuration.
    fn plan_over_normals(
        config: &QbhConfig,
        normals: &[Vec<f64>],
        options: PlannerOptions,
        metrics: &MetricsSink,
    ) -> Result<(QbhConfig, Option<TransformPlan>), StorageError> {
        let band = band_for_warping_width(config.warping_width, config.normal_length);
        let grid = planner_dims_grid(config);
        let plan = plan_transform(normals, band, &grid, &options).map_err(|e| {
            StorageError::Unrepresentable(format!("transform planning failed: {e}"))
        })?;
        record_plan(metrics, &plan);
        let mut resolved = *config;
        resolved.transform = TransformChoice::Fixed(kind_for_family(plan.family));
        resolved.feature_dims = plan.dims;
        Ok((resolved, Some(plan)))
    }

    /// Creates a fresh store-backed system at `dir`: an empty memtable over
    /// zero segments, with an empty `MANIFEST` written durably so a crash
    /// right after creation reopens cleanly.
    ///
    /// # Errors
    /// [`StorageError::Unrepresentable`] for [`TransformKind::Svd`] (see
    /// [`QbhSystem::try_open_store`]), an `AlreadyExists` I/O error when
    /// `dir` already holds a manifest, and any I/O failure.
    pub fn try_create_store(
        dir: &Path,
        config: &QbhConfig,
        options: StoreOptions,
    ) -> Result<Self, StorageError> {
        match config.fixed_transform() {
            Some(TransformKind::Svd) => return Err(svd_store_error()),
            Some(_) => {}
            None => return Err(auto_unresolved_error()),
        }
        store::init_store(dir, config)?;
        Self::try_open_store_with(dir, options, &MetricsSink::Disabled)
    }

    /// [`QbhSystem::try_create_store`] for [`TransformChoice::Auto`]
    /// configurations: resolves the transform by planning over
    /// `plan_sample` (raw pitch series, e.g. the first few hundred melodies
    /// of the incoming corpus), then creates the store with the resolved
    /// configuration and persists the plan evidence in the manifest. A
    /// `Fixed` configuration skips planning and persists no plan —
    /// equivalent to [`QbhSystem::try_create_store`].
    ///
    /// # Errors
    /// Everything [`QbhSystem::try_create_store`] can return, plus
    /// [`StorageError::Unrepresentable`] when planning fails (empty sample
    /// or no viable `(family, dims)` candidate).
    pub fn try_create_store_planned(
        dir: &Path,
        config: &QbhConfig,
        options: StoreOptions,
        plan_sample: &[Vec<f64>],
        metrics: &MetricsSink,
    ) -> Result<Self, StorageError> {
        let (resolved, plan) = Self::resolve_transform(config, plan_sample, metrics)?;
        match resolved.fixed_transform() {
            Some(TransformKind::Svd) => return Err(svd_store_error()),
            Some(_) => {}
            None => return Err(auto_unresolved_error()),
        }
        store::init_store_planned(dir, &resolved, plan)?;
        Self::try_open_store_with(dir, options, metrics)
    }

    /// Builds an *empty* in-memory system (no store directory, no corpus),
    /// resolving [`TransformChoice::Auto`] against `plan_sample` first —
    /// the scale harness uses this to stream-insert a corpus far larger
    /// than memory would allow [`QbhSystem::build`] to hold at once.
    ///
    /// # Errors
    /// [`StorageError::Unrepresentable`] when planning fails or the
    /// resolved transform is SVD (no corpus to fit it on).
    pub fn try_build_live(
        config: &QbhConfig,
        plan_sample: &[Vec<f64>],
        metrics: &MetricsSink,
    ) -> Result<Self, StorageError> {
        let (resolved, plan) = Self::resolve_transform(config, plan_sample, metrics)?;
        let mut memtable = store_engine(&resolved)?;
        memtable.set_metrics(metrics.clone());
        Ok(QbhSystem {
            memtable,
            segments: Vec::new(),
            normal: NormalForm::with_length(resolved.normal_length),
            band: band_for_warping_width(resolved.warping_width, resolved.normal_length),
            config: resolved,
            provenance: HashMap::new(),
            metrics: metrics.clone(),
            store: None,
            plan,
        })
    }

    /// Opens an existing store at `dir` with default [`StoreOptions`] and
    /// metrics disabled.
    ///
    /// # Errors
    /// See [`QbhSystem::try_open_store_with`].
    pub fn try_open_store(dir: &Path) -> Result<Self, StorageError> {
        Self::try_open_store_with(dir, StoreOptions::default(), &MetricsSink::Disabled)
    }

    /// Opens an existing store at `dir`: validates and loads the manifest
    /// and every segment it names (see [`crate::store::open_store`] for the
    /// corruption taxonomy), rebuilds one engine per segment — skipping
    /// tombstoned melodies, so a removal never resurrects across a reload —
    /// and starts an empty memtable.
    ///
    /// # Errors
    /// Any [`StorageError`] from [`crate::store::open_store`], plus
    /// [`StorageError::Unrepresentable`] if the manifest asks for the SVD
    /// transform (stores are created through [`QbhSystem::try_create_store`],
    /// which refuses it; a foreign manifest could still claim it).
    pub fn try_open_store_with(
        dir: &Path,
        options: StoreOptions,
        metrics: &MetricsSink,
    ) -> Result<Self, StorageError> {
        let loaded = store::open_store(dir)?;
        let config = loaded.manifest.config;
        if let Some(plan) = &loaded.manifest.plan {
            validate_plan_against_config(plan, &config)?;
        }
        let tombstones: BTreeSet<u64> = loaded.manifest.tombstones.iter().copied().collect();
        let mut provenance = HashMap::new();
        let mut segments = Vec::with_capacity(loaded.segments.len());
        let mut next_segment_id = 0u64;
        for (seg_ref, entries) in loaded.manifest.segments.iter().zip(&loaded.segments) {
            let mut engine = store_engine(&config)?;
            let mut meta = SegmentMeta::new(entries.len());
            let mut ids = Vec::with_capacity(entries.len());
            for entry in entries {
                ids.push(entry.id);
                if tombstones.contains(&entry.id) {
                    continue;
                }
                engine.try_insert(entry.id, entry.series.clone()).map_err(|e| {
                    StorageError::Corrupt(format!("segment {}: {e}", seg_ref.id))
                })?;
                provenance.insert(entry.id, (entry.song, entry.phrase));
            }
            {
                let transform = engine.transform();
                for entry in entries {
                    if !tombstones.contains(&entry.id) {
                        meta.add(entry.id, &transform.project(&entry.series));
                    }
                }
            }
            engine.set_metrics(metrics.clone());
            next_segment_id = seg_ref.id + 1;
            segments.push(StoreSegment { id: seg_ref.id, engine, meta, ids });
        }
        let mut memtable = store_engine(&config)?;
        memtable.set_metrics(metrics.clone());
        Ok(QbhSystem {
            memtable,
            segments,
            normal: NormalForm::with_length(config.normal_length),
            band: band_for_warping_width(config.warping_width, config.normal_length),
            config,
            provenance,
            metrics: metrics.clone(),
            store: Some(StoreState {
                dir: dir.to_path_buf(),
                options,
                tombstones,
                next_segment_id,
                memtable_ids: BTreeSet::new(),
                flushes: 0,
                compactions: 0,
                bytes_written: 0,
            }),
            plan: loaded.manifest.plan,
        })
    }

    /// Loads a persisted snapshot (either `HUMIDX` version) and builds the
    /// system over it.
    ///
    /// # Errors
    /// Any [`StorageError`] from [`crate::storage::load`], plus
    /// [`StorageError::Corrupt`] for a snapshot that holds zero melodies
    /// (structurally valid, but no system can be built over it). The
    /// configuration itself is validated during the read, so this never
    /// panics on untrusted files.
    pub fn try_load(path: &std::path::Path) -> Result<Self, StorageError> {
        Self::try_load_with(path, &MetricsSink::Disabled)
    }

    /// [`QbhSystem::try_load`], recording the load outcome and byte count
    /// into `metrics` and installing the same sink on the built engine so
    /// subsequent queries are recorded too.
    pub fn try_load_with(
        path: &std::path::Path,
        metrics: &MetricsSink,
    ) -> Result<Self, StorageError> {
        Self::try_load_with_shards(path, metrics, None)
    }

    /// [`QbhSystem::try_load_with`] with an optional shard-count override
    /// (the serving layer's `--shards` knob). `Some(n)` re-shards the loaded
    /// corpus into `n` shards regardless of what the snapshot was persisted
    /// with; `None` keeps the snapshot's own shard count (always 1 for
    /// `HUMIDX01`/`HUMIDX02` files). Query results are bit-identical either
    /// way.
    ///
    /// # Errors
    /// Same as [`QbhSystem::try_load_with`].
    pub fn try_load_with_shards(
        path: &std::path::Path,
        metrics: &MetricsSink,
        shards: Option<usize>,
    ) -> Result<Self, StorageError> {
        let (db, mut config, plan) = crate::storage::load_planned(path, metrics)?;
        if db.is_empty() {
            return Err(StorageError::Corrupt(
                "snapshot holds no melodies; cannot build a query system".into(),
            ));
        }
        if let Some(plan) = &plan {
            validate_plan_against_config(plan, &config)?;
        }
        if let Some(n) = shards {
            config.shards = n.max(1);
        }
        let mut system = Self::build(&db, &config);
        system.plan = plan;
        system.set_metrics(metrics.clone());
        Ok(system)
    }

    /// Number of indexed melodies, across the memtable and every segment.
    pub fn len(&self) -> usize {
        self.memtable.len() + self.segments.iter().map(|s| s.engine.len()).sum::<usize>()
    }

    /// `true` if nothing is indexed (never after a successful build; an
    /// empty store-backed system is legal).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The DTW band implied by the configured warping width.
    pub fn band(&self) -> usize {
        self.band
    }

    /// The configuration the system was built or opened with.
    pub fn config(&self) -> &QbhConfig {
        &self.config
    }

    /// Number of corpus shards each storage unit scatters queries across.
    pub fn shard_count(&self) -> usize {
        self.memtable.shard_count()
    }

    /// The memtable engine, for experiments that need raw control. For an
    /// in-memory build this is the whole corpus; for a store-backed system
    /// it holds only melodies inserted since the last flush.
    pub fn engine(&self) -> &QbhEngine {
        &self.memtable
    }

    /// Points the system at a metrics sink; pass [`MetricsSink::enabled`]
    /// to start recording every query into a shared registry. The sink is
    /// installed on every storage unit's engine (they record inserts and
    /// removals); queries are recorded exactly once by the segmented query
    /// path, regardless of unit count.
    pub fn set_metrics(&mut self, sink: MetricsSink) {
        self.memtable.set_metrics(sink.clone());
        for seg in &mut self.segments {
            seg.engine.set_metrics(sink.clone());
        }
        self.metrics = sink;
    }

    /// The metrics sink in use (disabled by default).
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// The storage units queries fan over, in fixed order: segments oldest
    /// to newest, then the memtable. The order is deterministic so merged
    /// counters are reproducible (matches are order-independent).
    fn units(&self) -> Vec<QbhUnit<'_>> {
        let mut units = Vec::with_capacity(self.segments.len() + 1);
        for seg in &self.segments {
            units.push(SegmentUnit { engine: &seg.engine, meta: Some(&seg.meta) });
        }
        units.push(SegmentUnit { engine: &self.memtable, meta: None });
        units
    }

    /// Every query surface funnels through here: one segmented fan-out
    /// over all storage units. With a single unit (every in-memory build)
    /// this is exactly the monolithic sharded query, traces included.
    fn run_request(
        &self,
        request: &QueryRequest,
        scratch: &mut QueryScratch,
    ) -> Result<QueryOutcome, EngineError> {
        query_segmented(&self.units(), request, scratch, &self.metrics)
    }

    /// Opens an incremental query session: the request template's kind,
    /// band, trace, and scan settings apply to every refinement (any
    /// series already on the template is ignored — frames stream in
    /// through [`QuerySession::append`]). Use [`QbhSystem::band`] for the
    /// configured warping width. The session owns the incremental
    /// normal-form state; [`QbhSystem::try_refine_session`] answers the
    /// query over everything appended so far, bit-identical to a one-shot
    /// [`QbhSystem::try_query_request`] over the same prefix.
    pub fn open_session(&self, template: QueryRequest) -> QuerySession {
        QuerySession::new(template, self.normal)
    }

    /// Refines a session: answers its query over every frame appended so
    /// far, annotated with provenance. The session's template budget
    /// governs the deadline (attach one with
    /// [`QueryRequest::with_budget`] before opening, or use the
    /// scratch-reusing form).
    ///
    /// # Errors
    /// [`EngineError::EmptyQuery`] before the first append, plus anything
    /// the engine reports — [`EngineError::DeadlineExceeded`] carries the
    /// partial counters when the budget expires mid-refinement.
    pub fn try_refine_session(
        &self,
        session: &QuerySession,
    ) -> Result<(QbhResults, Option<QueryTrace>), EngineError> {
        let mut scratch = QueryScratch::new();
        self.try_refine_session_with(session, &mut scratch)
    }

    /// [`QbhSystem::try_refine_session`] computing in caller-provided
    /// scratch — the serving path reuses one scratch per worker. Results
    /// and counters are identical to the fresh-scratch form.
    ///
    /// # Errors
    /// Same as [`QbhSystem::try_refine_session`].
    pub fn try_refine_session_with(
        &self,
        session: &QuerySession,
        scratch: &mut QueryScratch,
    ) -> Result<(QbhResults, Option<QueryTrace>), EngineError> {
        let budget = session.template().budget();
        let request = session.to_request(budget)?;
        let outcome = self.run_request(&request, scratch)?;
        Ok((self.annotate(outcome.result), outcome.trace))
    }

    /// Executes a [`QueryRequest`] on a hummed pitch series: the series is
    /// normalized and attached to the request (any series already on the
    /// request is replaced), so callers only choose kind, band, trace, and
    /// scan fallback. Use [`QbhSystem::band`] for the configured warping
    /// width. Returns annotated results plus the cascade trace when the
    /// request asked for one.
    ///
    /// Implemented as a degenerate session — open, append everything,
    /// refine once — so the one-shot and streaming surfaces cannot drift:
    /// there is exactly one path from raw frames to the engine.
    ///
    /// # Errors
    /// [`EngineError::EmptyQuery`] on an empty pitch series, plus anything
    /// [`DtwIndexEngine::try_query`] reports.
    pub fn try_query_request(
        &self,
        pitch_series: &[f64],
        request: QueryRequest,
    ) -> Result<(QbhResults, Option<QueryTrace>), EngineError> {
        let mut scratch = QueryScratch::new();
        self.try_query_request_with(pitch_series, request, &mut scratch)
    }

    /// [`QbhSystem::try_query_request`] computing in caller-provided
    /// scratch — the server's worker pool reuses one scratch per worker.
    /// Results and counters are identical to the fresh-scratch form.
    ///
    /// # Errors
    /// Same as [`QbhSystem::try_query_request`].
    pub fn try_query_request_with(
        &self,
        pitch_series: &[f64],
        request: QueryRequest,
        scratch: &mut QueryScratch,
    ) -> Result<(QbhResults, Option<QueryTrace>), EngineError> {
        let mut session = self.open_session(request);
        // An empty series leaves the session empty; refinement reports
        // `EmptyQuery` before `NormalForm::apply` could see it.
        session.append(pitch_series)?;
        self.try_refine_session_with(&session, scratch)
    }

    /// Live insert: renders a raw (hummed-scale) pitch series to normal
    /// form, indexes it in the memtable under `id`, and records its
    /// provenance. The melody is queryable as soon as this returns; on
    /// error nothing changes. In store mode the melody becomes *durable*
    /// at the next [`QbhSystem::flush`] (the memtable is volatile; there
    /// is no write-ahead log).
    ///
    /// # Errors
    /// [`EngineError::EmptyQuery`] on an empty series,
    /// [`EngineError::NonFiniteSample`] on NaN/infinite samples (checked on
    /// the *raw* series, before resampling can smear the poison), and
    /// [`EngineError::DuplicateId`] when `id` is already indexed in any
    /// storage unit — or tombstoned: a removed id stays reserved until
    /// compaction drops it from its segment file, since re-using it earlier
    /// would make the on-disk segments overlap.
    pub fn try_insert_melody(
        &mut self,
        id: u64,
        song: usize,
        phrase: usize,
        pitch_series: &[f64],
    ) -> Result<(), EngineError> {
        if pitch_series.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        check_finite(pitch_series, "inserted pitch series")?;
        // Global duplicate check: the memtable's own check only covers
        // itself, not segment-resident or tombstoned ids.
        if self.provenance.contains_key(&id)
            || self.store.as_ref().is_some_and(|s| s.tombstones.contains(&id))
        {
            return Err(EngineError::DuplicateId(id));
        }
        self.memtable.try_insert(id, self.normal.apply(pitch_series))?;
        self.provenance.insert(id, (song, phrase));
        if let Some(state) = self.store.as_mut() {
            state.memtable_ids.insert(id);
        }
        Ok(())
    }

    /// Live removal: drops the melody stored under `id` from whichever
    /// storage unit holds it. Returns `Ok(true)` if it was present.
    ///
    /// In store mode, removing a *segment-resident* melody writes a
    /// tombstone into the manifest durably **before** the in-memory
    /// removal, so a crash-and-reload can never resurrect it; the
    /// tombstoned entry physically disappears at the next compaction.
    /// Memtable-resident melodies were never durable, so their removal is
    /// purely in-memory. For in-memory builds this degrades to the old
    /// behavior (durability comes from the next full snapshot save) and
    /// never returns an error.
    ///
    /// # Errors
    /// Any I/O or encoding failure writing the updated manifest; the
    /// system is unchanged (the melody stays queryable) on error.
    pub fn try_remove(&mut self, id: u64) -> Result<bool, StorageError> {
        let Some(state) = self.store.as_mut() else {
            if !self.memtable.remove(id) {
                return Ok(false);
            }
            self.provenance.remove(&id);
            return Ok(true);
        };
        if state.memtable_ids.contains(&id) {
            // Never flushed: nothing on disk references it.
            state.memtable_ids.remove(&id);
            self.memtable.remove(id);
            self.provenance.remove(&id);
            return Ok(true);
        }
        // Segment-resident (pruning filters may false-positive; the engine
        // lookup is authoritative).
        let Some(seg_index) = self
            .segments
            .iter()
            .position(|s| s.meta.may_contain_id(id) && s.engine.get(id).is_some())
        else {
            return Ok(false);
        };
        // Durable first: manifest with the new tombstone, then memory.
        let mut tombstones = state.tombstones.clone();
        tombstones.insert(id);
        let manifest = Manifest {
            config: self.config,
            segments: self.segments.iter().map(StoreSegment::to_ref).collect(),
            tombstones: tombstones.iter().copied().collect(),
            plan: self.plan.clone(),
        };
        state.bytes_written += store::save_manifest(&state.dir, &manifest)?;
        state.tombstones = tombstones;
        self.segments[seg_index].engine.remove(id);
        self.provenance.remove(&id);
        Ok(true)
    }

    /// Panicking form of [`QbhSystem::try_query_request`].
    ///
    /// # Panics
    /// Panics on any [`EngineError`] the `try_` form would return.
    pub fn query_request(
        &self,
        pitch_series: &[f64],
        request: QueryRequest,
    ) -> (QbhResults, Option<QueryTrace>) {
        self.try_query_request(pitch_series, request).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Top-`k` matches for a hummed pitch series (fractional MIDI values,
    /// silence already removed), at the configured warping width.
    pub fn query_series(&self, pitch_series: &[f64], k: usize) -> QbhResults {
        self.query_series_banded(pitch_series, self.band, k)
    }

    /// Top-`k` matches at an explicit DTW band.
    ///
    /// # Panics
    /// Panics on an empty pitch series.
    pub fn query_series_banded(&self, pitch_series: &[f64], band: usize, k: usize) -> QbhResults {
        let query = self.normal.apply(pitch_series);
        let request = QueryRequest::knn(k).with_series(query).with_band(band);
        let outcome = self
            .run_request(&request, &mut QueryScratch::new())
            .unwrap_or_else(|e| panic!("{e}"));
        self.annotate(outcome.result)
    }

    /// ε-range query on the normal-form DTW distance (used by the candidate
    /// and page-access experiments).
    pub fn range_query(&self, pitch_series: &[f64], band: usize, radius: f64) -> QbhResults {
        let query = self.normal.apply(pitch_series);
        let request = QueryRequest::range(radius).with_series(query).with_band(band);
        let outcome = self
            .run_request(&request, &mut QueryScratch::new())
            .unwrap_or_else(|e| panic!("{e}"));
        self.annotate(outcome.result)
    }

    /// Batched [`QbhSystem::query_series`]: top-`k` matches for each of `n`
    /// hummed pitch series at the configured warping width, executed across
    /// [`BatchOptions::threads`] worker threads in deterministic fixed-size
    /// chunks. Results — matches *and* counters — are bit-identical to `n`
    /// sequential [`QbhSystem::query_series`] calls for every thread count.
    pub fn query_series_batch(
        &self,
        pitch_series: &[Vec<f64>],
        k: usize,
        options: &BatchOptions,
    ) -> Vec<QbhResults> {
        let batch: Vec<QueryRequest> = pitch_series
            .iter()
            .map(|series| {
                QueryRequest::knn(k).with_series(self.normal.apply(series)).with_band(self.band)
            })
            .collect();
        query_segmented_batch(&self.units(), &batch, options, &self.metrics)
            .unwrap_or_else(|e| panic!("{e}"))
            .outcomes
            .into_iter()
            .map(|o| self.annotate(o.result))
            .collect()
    }

    /// Full pipeline from raw microphone audio: pitch-track at 10 ms frames,
    /// drop silence, and search.
    ///
    /// Returns empty results when no voiced frames were found.
    pub fn query_audio(&self, samples: &[f64], sample_rate: u32, k: usize) -> QbhResults {
        let tracker = PitchTrackerConfig { sample_rate, ..PitchTrackerConfig::default() };
        let series = track_pitch(samples, &tracker).voiced_series();
        if series.is_empty() {
            return QbhResults::default();
        }
        self.query_series(&series, k)
    }

    /// `true` when the system is backed by an on-disk store.
    pub fn is_store_backed(&self) -> bool {
        self.store.is_some()
    }

    /// Melodies currently resident only in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Live immutable segments (always 0 for in-memory builds).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Store counters, or `None` for an in-memory build.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|state| StoreStats {
            segments: self.segments.len(),
            memtable_len: state.memtable_ids.len(),
            tombstones: state.tombstones.len(),
            flushes: state.flushes,
            compactions: state.compactions,
            bytes_written: state.bytes_written,
            plan_family: self.plan.as_ref().map(|p| p.family),
            plan_dims: self.plan.as_ref().map_or(0, |p| p.dims),
            plan_tightness_ppm: self
                .plan
                .as_ref()
                .map_or(0, |p| (p.mean_tightness.clamp(0.0, 1.0) * 1e6).round() as u64),
        })
    }

    /// The transform plan this system was built, created, or opened under —
    /// `None` unless the configuration was [`TransformChoice::Auto`] (or the
    /// on-disk artifact carried persisted plan evidence).
    pub fn plan(&self) -> Option<&TransformPlan> {
        self.plan.as_ref()
    }

    /// `true` when the memtable has reached [`StoreOptions::memtable_capacity`]
    /// and the next [`QbhSystem::maintain`] will flush it.
    pub fn needs_flush(&self) -> bool {
        self.store
            .as_ref()
            .is_some_and(|s| s.memtable_ids.len() >= s.options.memtable_capacity.max(1))
    }

    /// `true` when the segment count has reached [`StoreOptions::compact_at`],
    /// or at least a quarter of the segment-resident melodies are
    /// tombstoned, so the next [`QbhSystem::maintain`] will compact.
    pub fn needs_compaction(&self) -> bool {
        let Some(state) = self.store.as_ref() else {
            return false;
        };
        if self.segments.len() >= state.options.compact_at.max(2) {
            return true;
        }
        let on_disk: usize = self.segments.iter().map(|s| s.ids.len()).sum();
        !state.tombstones.is_empty() && state.tombstones.len() * 4 >= on_disk
    }

    /// Flushes the memtable: writes its melodies as a new immutable
    /// segment, commits the segment into the manifest, and re-opens an
    /// empty memtable — the flushed engine *becomes* the segment's engine,
    /// so nothing is re-indexed and queries are undisturbed. This is the
    /// durability boundary for inserts: the flush writes only the new
    /// melodies plus a small manifest, never the whole corpus. Returns
    /// `Ok(false)` when the memtable was empty (nothing written).
    ///
    /// Crash safety: the segment file lands (atomic rename) before the
    /// manifest that names it; a crash between the two leaves an orphan
    /// segment file that [`QbhSystem::try_open_store_with`] ignores.
    ///
    /// # Errors
    /// [`StorageError::Unrepresentable`] for an in-memory build, plus any
    /// I/O or encoding failure — the memtable is left intact on error.
    pub fn flush(&mut self) -> Result<bool, StorageError> {
        let Some(state) = self.store.as_mut() else {
            return Err(StorageError::Unrepresentable(
                "flush requires a store-backed system (see QbhSystem::try_create_store)".into(),
            ));
        };
        if state.memtable_ids.is_empty() {
            return Ok(false);
        }
        let mut entries = Vec::with_capacity(state.memtable_ids.len());
        for &id in &state.memtable_ids {
            let series = self.memtable.get(id).map(<[f64]>::to_vec).ok_or_else(|| {
                StorageError::Corrupt(format!("memtable id {id} tracked but not indexed"))
            })?;
            let (song, phrase) = self.provenance.get(&id).copied().unwrap_or((0, 0));
            entries.push(SegmentEntry { id, song, phrase, series });
        }
        let segment_id = state.next_segment_id;
        let mut written = store::save_segment(&state.dir, segment_id, &self.config, &entries)?;
        let mut segment_refs: Vec<SegmentRef> =
            self.segments.iter().map(StoreSegment::to_ref).collect();
        segment_refs.push(SegmentRef { id: segment_id, count: entries.len() as u64 });
        let manifest = Manifest {
            config: self.config,
            segments: segment_refs,
            tombstones: state.tombstones.iter().copied().collect(),
            plan: self.plan.clone(),
        };
        written += store::save_manifest(&state.dir, &manifest)?;
        // Durably committed: seal the memtable as the new segment.
        let mut meta = SegmentMeta::new(entries.len());
        {
            let transform = self.memtable.transform();
            for entry in &entries {
                meta.add(entry.id, &transform.project(&entry.series));
            }
        }
        let mut fresh = store_engine(&self.config)?;
        fresh.set_metrics(self.metrics.clone());
        let engine = std::mem::replace(&mut self.memtable, fresh);
        self.segments.push(StoreSegment {
            id: segment_id,
            engine,
            meta,
            ids: entries.iter().map(|e| e.id).collect(),
        });
        state.next_segment_id += 1;
        state.memtable_ids.clear();
        state.flushes += 1;
        state.bytes_written += written;
        self.metrics.add(Metric::StorageSaves, 1);
        self.metrics.add(Metric::StorageBytesWritten, written);
        Ok(true)
    }

    /// Compacts every segment into (at most) one: gathers the live
    /// melodies across all segments, writes them as a single new segment,
    /// and commits a manifest with the tombstone list cleared — removals
    /// become physical here. The memtable is untouched. Old segment files
    /// are deleted best-effort after the swap (a leftover is an ignored
    /// orphan). Returns `Ok(false)` when there was nothing to do (zero or
    /// one segment and no tombstones).
    ///
    /// # Errors
    /// [`StorageError::Unrepresentable`] for an in-memory build, plus any
    /// I/O or encoding failure — the pre-compaction view stays live and
    /// on-disk state stays openable on error.
    pub fn compact(&mut self) -> Result<bool, StorageError> {
        let Some(state) = self.store.as_mut() else {
            return Err(StorageError::Unrepresentable(
                "compact requires a store-backed system (see QbhSystem::try_create_store)".into(),
            ));
        };
        if self.segments.len() <= 1 && state.tombstones.is_empty() {
            return Ok(false);
        }
        // Live melodies in ascending id order (segments never overlap, but
        // flush order does not imply id order across segments).
        let mut entries: Vec<SegmentEntry> = Vec::new();
        for seg in &self.segments {
            for &id in &seg.ids {
                if state.tombstones.contains(&id) {
                    continue;
                }
                let series = seg.engine.get(id).map(<[f64]>::to_vec).ok_or_else(|| {
                    StorageError::Corrupt(format!("segment {} lost melody {id}", seg.id))
                })?;
                let (song, phrase) = self.provenance.get(&id).copied().unwrap_or((0, 0));
                entries.push(SegmentEntry { id, song, phrase, series });
            }
        }
        entries.sort_by_key(|e| e.id);
        let old_ids: Vec<u64> = self.segments.iter().map(|s| s.id).collect();
        let mut written = 0u64;
        let mut new_segments = Vec::new();
        let mut segment_refs = Vec::new();
        if !entries.is_empty() {
            let segment_id = state.next_segment_id;
            written += store::save_segment(&state.dir, segment_id, &self.config, &entries)?;
            // Rebuild the merged engine with metrics detached: compaction
            // re-indexing is not a user-visible insert.
            let mut engine = store_engine(&self.config)?;
            let mut meta = SegmentMeta::new(entries.len());
            for entry in &entries {
                engine.try_insert(entry.id, entry.series.clone()).map_err(|e| {
                    StorageError::Corrupt(format!("rebuilding compacted segment: {e}"))
                })?;
            }
            {
                let transform = engine.transform();
                for entry in &entries {
                    meta.add(entry.id, &transform.project(&entry.series));
                }
            }
            engine.set_metrics(self.metrics.clone());
            segment_refs.push(SegmentRef { id: segment_id, count: entries.len() as u64 });
            new_segments.push(StoreSegment {
                id: segment_id,
                engine,
                meta,
                ids: entries.iter().map(|e| e.id).collect(),
            });
            state.next_segment_id += 1;
        }
        let manifest = Manifest {
            config: self.config,
            segments: segment_refs,
            tombstones: Vec::new(),
            plan: self.plan.clone(),
        };
        written += store::save_manifest(&state.dir, &manifest)?;
        self.segments = new_segments;
        state.tombstones.clear();
        state.compactions += 1;
        state.bytes_written += written;
        self.metrics.add(Metric::StorageSaves, 1);
        self.metrics.add(Metric::StorageBytesWritten, written);
        // The manifest no longer names the old files; reclaim best-effort.
        for id in old_ids {
            let _ = std::fs::remove_file(store::segment_path(&state.dir, id));
        }
        Ok(true)
    }

    /// One maintenance tick: flush if [`QbhSystem::needs_flush`], then
    /// compact if [`QbhSystem::needs_compaction`]. A no-op (and never an
    /// error) for in-memory builds, so serving layers can call it
    /// unconditionally.
    ///
    /// # Errors
    /// As [`QbhSystem::flush`] and [`QbhSystem::compact`].
    pub fn maintain(&mut self) -> Result<StoreMaintenance, StorageError> {
        if self.store.is_none() {
            return Ok(StoreMaintenance::default());
        }
        let flushed = if self.needs_flush() { self.flush()? } else { false };
        let compacted = if self.needs_compaction() { self.compact()? } else { false };
        Ok(StoreMaintenance { flushed, compacted })
    }

    fn annotate(&self, result: hum_core::engine::QueryResult) -> QbhResults {
        let matches = result
            .matches
            .into_iter()
            .map(|(id, distance)| {
                // Every indexed id has provenance (insert paths record it in
                // lockstep); a miss would be an internal bug, so surface it
                // loudly in debug builds and degrade to (0, 0) in release.
                let provenance = self.provenance.get(&id).copied();
                debug_assert!(provenance.is_some(), "id {id} has no provenance");
                let (song, phrase) = provenance.unwrap_or((0, 0));
                QbhMatch { id, song, phrase, distance }
            })
            .collect();
        QbhResults { matches, stats: result.stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hum_audio::{HumSynthesizer, SynthConfig};
    use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};

    fn small_db() -> MelodyDatabase {
        MelodyDatabase::from_songbook(&SongbookConfig {
            songs: 10,
            phrases_per_song: 5,
            ..SongbookConfig::default()
        })
    }

    #[test]
    fn exact_rendition_ranks_first() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        // "Hum" phrase 12 perfectly: its own time series.
        let series = db.entry(12).unwrap().melody().to_time_series(4);
        let results = system.query_series(&series, 5);
        assert_eq!(results.matches[0].id, 12);
        assert!(results.matches[0].distance < 1e-9);
    }

    #[test]
    fn good_singer_hum_ranks_target_highly() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let mut hits = 0;
        for (i, target) in [3u64, 17, 29, 41].iter().enumerate() {
            let mut singer = HummingSimulator::new(SingerProfile::good(), 100 + i as u64);
            let hum = singer.sing_series(db.entry(*target).unwrap().melody(), 0.01);
            let results = system.query_series(&hum, 10);
            if results.matches.iter().take(3).any(|m| m.id == *target) {
                hits += 1;
            }
        }
        assert!(hits >= 3, "only {hits}/4 hums found their target in the top 3");
    }

    #[test]
    fn provenance_is_reported() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let series = db.entry(23).unwrap().melody().to_time_series(4);
        let m = &system.query_series(&series, 1).matches[0];
        assert_eq!((m.song, m.phrase), (db.entry(23).unwrap().song(), db.entry(23).unwrap().phrase()));
    }

    #[test]
    fn all_transform_and_backend_combinations_build_and_agree() {
        let db = small_db();
        let series = db.entry(7).unwrap().melody().to_time_series(4);
        let mut reference: Option<Vec<u64>> = None;
        for transform in [
            TransformKind::NewPaa,
            TransformKind::KeoghPaa,
            TransformKind::Dft,
            TransformKind::Dwt,
            TransformKind::Svd,
        ] {
            for backend in [Backend::RStar, Backend::Grid, Backend::Linear] {
                let config = QbhConfig { transform: transform.into(), backend, ..QbhConfig::default() };
                let system = QbhSystem::build(&db, &config);
                let ids: Vec<u64> =
                    system.query_series(&series, 5).matches.iter().map(|m| m.id).collect();
                match &reference {
                    None => reference = Some(ids),
                    // Exact DTW refinement makes the final ranking
                    // transform- and backend-independent.
                    Some(r) => assert_eq!(&ids, r, "{transform:?}/{backend:?}"),
                }
            }
        }
    }

    #[test]
    fn sharded_system_matches_monolithic() {
        let db = small_db();
        // SVD included deliberately: it is data-adaptive, and the fit-once-
        // clone-per-shard build is what keeps its features shard-invariant.
        for transform in [TransformKind::NewPaa, TransformKind::Svd] {
            let mono =
                QbhSystem::build(&db, &QbhConfig { transform: transform.into(), ..QbhConfig::default() });
            for shards in [2usize, 4, 7] {
                let config = QbhConfig { transform: transform.into(), shards, ..QbhConfig::default() };
                let system = QbhSystem::build(&db, &config);
                assert_eq!(system.shard_count(), shards);
                for id in [3u64, 17, 29] {
                    let series = db.entry(id).unwrap().melody().to_time_series(4);
                    assert_eq!(
                        system.query_series(&series, 5).matches,
                        mono.query_series(&series, 5).matches,
                        "{transform:?} shards={shards} id={id}"
                    );
                    assert_eq!(
                        system.range_query(&series, system.band(), 2.0).matches,
                        mono.range_query(&series, mono.band(), 2.0).matches,
                        "{transform:?} shards={shards} id={id}"
                    );
                }
            }
        }
    }

    #[test]
    fn audio_pipeline_end_to_end() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let target = 31u64;
        let mut singer = HummingSimulator::new(SingerProfile::good(), 5);
        let sung = singer.sing_notes(db.entry(target).unwrap().melody());
        let hum_notes: Vec<hum_audio::HumNote> =
            sung.iter().map(|n| hum_audio::HumNote { midi: n.midi, seconds: n.seconds }).collect();
        let audio = HumSynthesizer::new(SynthConfig::default()).render(&hum_notes);
        let results = system.query_audio(&audio, 8_000, 10);
        assert!(
            results.matches.iter().any(|m| m.id == target),
            "audio-route query missed its target"
        );
    }

    #[test]
    fn batched_queries_match_sequential_for_every_thread_count() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let hums: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                let mut singer = HummingSimulator::new(SingerProfile::good(), 400 + i);
                singer.sing_series(db.entry(i * 7).unwrap().melody(), 0.01)
            })
            .collect();
        let expected: Vec<QbhResults> =
            hums.iter().map(|h| system.query_series(h, 5)).collect();
        for threads in [1, 2, 8] {
            let got = system.query_series_batch(&hums, 5, &BatchOptions::new(threads, 2));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn silent_audio_returns_empty() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let results = system.query_audio(&vec![0.0; 8000], 8_000, 5);
        assert!(results.matches.is_empty());
    }

    #[test]
    fn range_query_respects_radius() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let series = db.entry(2).unwrap().melody().to_time_series(4);
        let tight = system.range_query(&series, system.band(), 1e-6);
        assert_eq!(tight.matches.len(), 1);
        let loose = system.range_query(&series, system.band(), 1e6);
        assert_eq!(loose.matches.len(), db.len());
    }

    #[test]
    #[should_panic(expected = "empty melody database")]
    fn empty_database_rejected() {
        let _ = QbhSystem::build(&MelodyDatabase::empty(), &QbhConfig::default());
    }

    #[test]
    fn query_request_matches_legacy_paths_and_traces() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let series = db.entry(12).unwrap().melody().to_time_series(4);
        let (results, trace) = system.query_request(
            &series,
            QueryRequest::knn(5).with_band(system.band()).with_trace(true),
        );
        assert_eq!(results, system.query_series(&series, 5));
        let trace = trace.expect("trace requested");
        assert_eq!(trace.totals(), results.stats);
        assert_eq!(trace.matches, 5);
    }

    #[test]
    fn empty_pitch_series_is_a_typed_error() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        assert_eq!(
            system.try_query_request(&[], QueryRequest::knn(3)).unwrap_err(),
            EngineError::EmptyQuery
        );
    }

    #[test]
    fn live_insert_is_immediately_queryable_and_removal_unfindable() {
        let db = small_db();
        let mut system = QbhSystem::build(&db, &QbhConfig::default());
        let before = system.len();

        // A distinctive melody far from the songbook's register.
        let series: Vec<f64> = (0..64).map(|i| 90.0 + 5.0 * (i as f64 * 0.7).sin()).collect();
        system.try_insert_melody(7_000, 99, 3, &series).unwrap();
        assert_eq!(system.len(), before + 1);

        let results = system.query_series(&series, 1);
        assert_eq!(results.matches[0].id, 7_000);
        assert_eq!((results.matches[0].song, results.matches[0].phrase), (99, 3));

        assert!(system.try_remove(7_000).unwrap());
        assert!(!system.try_remove(7_000).unwrap(), "second removal finds nothing");
        assert_eq!(system.len(), before);
        assert!(system.query_series(&series, 1).matches[0].id != 7_000);
    }

    #[test]
    fn live_insert_rejects_duplicate_ids_and_bad_samples() {
        let db = small_db();
        let mut system = QbhSystem::build(&db, &QbhConfig::default());
        let series: Vec<f64> = (0..32).map(|i| 60.0 + i as f64 * 0.1).collect();

        // Id 12 came from the database build.
        assert_eq!(
            system.try_insert_melody(12, 0, 0, &series).unwrap_err(),
            EngineError::DuplicateId(12)
        );
        assert_eq!(
            system.try_insert_melody(8_000, 0, 0, &[]).unwrap_err(),
            EngineError::EmptyQuery
        );
        let mut poisoned = series.clone();
        poisoned[7] = f64::NAN;
        let before = system.len();
        match system.try_insert_melody(8_000, 0, 0, &poisoned) {
            Err(EngineError::NonFiniteSample { index, .. }) => assert_eq!(index, 7),
            other => panic!("expected NonFiniteSample, got {other:?}"),
        }
        assert_eq!(system.len(), before, "failed insert must not change the system");
        assert!(!system.try_remove(8_000).unwrap());
    }

    #[test]
    fn streaming_session_matches_one_shot_at_every_checkpoint() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig { shards: 3, ..QbhConfig::default() });
        let mut singer = HummingSimulator::new(SingerProfile::good(), 77);
        let hum = singer.sing_series(db.entry(19).unwrap().melody(), 0.01);

        let template = QueryRequest::knn(5).with_band(system.band()).with_trace(true);
        let mut session = system.open_session(template.clone());
        assert_eq!(
            system.try_refine_session(&session).unwrap_err(),
            EngineError::EmptyQuery
        );
        let mut scratch = QueryScratch::new();
        for chunk in hum.chunks(13) {
            session.append(chunk).unwrap();
            let streamed =
                system.try_refine_session_with(&session, &mut scratch).unwrap();
            let one_shot = system
                .try_query_request(session.frames(), template.clone())
                .unwrap();
            assert_eq!(streamed, one_shot, "prefix of {} frames", session.len());
        }
        // The fully-streamed hum answers exactly like the legacy surface.
        let (results, _) = system.try_query_request(&hum, template).unwrap();
        assert_eq!(results, system.query_series_banded(&hum, system.band(), 5));
    }

    #[test]
    fn scratch_reusing_query_matches_the_fresh_scratch_form() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let mut scratch = QueryScratch::new();
        for id in [3u64, 17, 29] {
            let series = db.entry(id).unwrap().melody().to_time_series(4);
            let request = QueryRequest::knn(5).with_band(system.band()).with_trace(true);
            let fresh = system.try_query_request(&series, request.clone()).unwrap();
            let reused =
                system.try_query_request_with(&series, request, &mut scratch).unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn metrics_sink_records_system_queries() {
        let db = small_db();
        let mut system = QbhSystem::build(&db, &QbhConfig::default());
        assert!(!system.metrics().is_enabled());
        system.set_metrics(MetricsSink::enabled());
        let series = db.entry(3).unwrap().melody().to_time_series(4);
        let results = system.query_series(&series, 4);
        let snapshot = system.metrics().registry().expect("enabled").snapshot();
        assert_eq!(snapshot.counter(hum_core::obs::Metric::KnnQueries), 1);
        assert_eq!(
            snapshot.counter(hum_core::obs::Metric::DpCells),
            results.stats.dp_cells
        );
    }
}
