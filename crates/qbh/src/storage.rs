//! Binary persistence for melody databases.
//!
//! A production QBH service builds its database once and serves many
//! queries. This module defines a small versioned binary format (`HUMIDX`)
//! holding the melody database together with the [`QbhConfig`] it should be
//! indexed under; loading rebuilds the (main-memory) index deterministically
//! with [`crate::system::QbhSystem::build`]. Melody content — not index pages — is what is
//! persisted: the index is cheap to rebuild and its in-memory layout is not
//! a stable contract.

use std::io::{self, Read, Write};
use std::path::Path;

use hum_music::{Melody, Note};

use crate::corpus::{MelodyDatabase, MelodyEntry};
use crate::system::{Backend, QbhConfig, TransformKind};

/// File magic (8 bytes): name plus format version.
const MAGIC: &[u8; 8] = b"HUMIDX01";

/// Errors while reading a `HUMIDX` file.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a `HUMIDX` file, or an unsupported version.
    BadMagic,
    /// Structurally invalid content.
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::BadMagic => write!(f, "not a HUMIDX file (or unsupported version)"),
            StorageError::Corrupt(msg) => write!(f, "corrupt HUMIDX file: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Serializes a database and its indexing configuration.
pub fn write_database<W: Write>(
    out: &mut W,
    db: &MelodyDatabase,
    config: &QbhConfig,
) -> io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&(config.normal_length as u32).to_le_bytes())?;
    out.write_all(&(config.feature_dims as u32).to_le_bytes())?;
    out.write_all(&(config.samples_per_beat as u32).to_le_bytes())?;
    out.write_all(&config.warping_width.to_le_bytes())?;
    out.write_all(&[transform_tag(config.transform), backend_tag(config.backend)])?;
    out.write_all(&(config.page_bytes as u32).to_le_bytes())?;

    out.write_all(&(db.len() as u64).to_le_bytes())?;
    for entry in db.entries() {
        out.write_all(&(entry.song() as u32).to_le_bytes())?;
        out.write_all(&(entry.phrase() as u32).to_le_bytes())?;
        let melody = entry.melody();
        out.write_all(&(melody.len() as u32).to_le_bytes())?;
        for note in melody.notes() {
            out.write_all(&[note.pitch])?;
            out.write_all(&note.beats.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserializes a database and configuration.
pub fn read_database<R: Read>(input: &mut R) -> Result<(MelodyDatabase, QbhConfig), StorageError> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let normal_length = read_u32(input)? as usize;
    let feature_dims = read_u32(input)? as usize;
    let samples_per_beat = read_u32(input)? as usize;
    let warping_width = read_f64(input)?;
    let mut tags = [0u8; 2];
    input.read_exact(&mut tags)?;
    let transform = transform_from_tag(tags[0])?;
    let backend = backend_from_tag(tags[1])?;
    let page_bytes = read_u32(input)? as usize;
    if normal_length == 0 || feature_dims == 0 || samples_per_beat == 0 {
        return Err(StorageError::Corrupt("zero-sized configuration field".into()));
    }
    if !(0.0..=1.0).contains(&warping_width) {
        return Err(StorageError::Corrupt(format!("warping width {warping_width}")));
    }
    let config = QbhConfig {
        normal_length,
        feature_dims,
        samples_per_beat,
        warping_width,
        transform,
        backend,
        page_bytes,
    };

    let count = read_u64(input)?;
    if count > 100_000_000 {
        return Err(StorageError::Corrupt(format!("implausible melody count {count}")));
    }
    let mut phrases = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let song = read_u32(input)? as usize;
        let phrase = read_u32(input)? as usize;
        let notes = read_u32(input)?;
        if notes > 1_000_000 {
            return Err(StorageError::Corrupt(format!("implausible note count {notes}")));
        }
        let mut melody = Melody::default();
        for _ in 0..notes {
            let mut pitch = [0u8; 1];
            input.read_exact(&mut pitch)?;
            let beats = read_f64(input)?;
            if pitch[0] > 127 || !beats.is_finite() || beats <= 0.0 {
                return Err(StorageError::Corrupt(format!(
                    "invalid note (pitch {}, beats {beats})",
                    pitch[0]
                )));
            }
            melody.push(Note::new(pitch[0], beats));
        }
        phrases.push((song, phrase, melody));
    }
    Ok((MelodyDatabase::from_provenanced(phrases), config))
}

/// Saves to a file path.
pub fn save(path: &Path, db: &MelodyDatabase, config: &QbhConfig) -> Result<(), StorageError> {
    let mut out = io::BufWriter::new(std::fs::File::create(path)?);
    write_database(&mut out, db, config)?;
    out.flush()?;
    Ok(())
}

/// Loads from a file path.
pub fn load(path: &Path) -> Result<(MelodyDatabase, QbhConfig), StorageError> {
    let mut input = io::BufReader::new(std::fs::File::open(path)?);
    read_database(&mut input)
}

fn transform_tag(t: TransformKind) -> u8 {
    match t {
        TransformKind::NewPaa => 0,
        TransformKind::KeoghPaa => 1,
        TransformKind::Dft => 2,
        TransformKind::Dwt => 3,
        TransformKind::Svd => 4,
    }
}

fn transform_from_tag(tag: u8) -> Result<TransformKind, StorageError> {
    Ok(match tag {
        0 => TransformKind::NewPaa,
        1 => TransformKind::KeoghPaa,
        2 => TransformKind::Dft,
        3 => TransformKind::Dwt,
        4 => TransformKind::Svd,
        other => return Err(StorageError::Corrupt(format!("unknown transform tag {other}"))),
    })
}

fn backend_tag(b: Backend) -> u8 {
    match b {
        Backend::RStar => 0,
        Backend::Grid => 1,
        Backend::Linear => 2,
    }
}

fn backend_from_tag(tag: u8) -> Result<Backend, StorageError> {
    Ok(match tag {
        0 => Backend::RStar,
        1 => Backend::Grid,
        2 => Backend::Linear,
        other => return Err(StorageError::Corrupt(format!("unknown backend tag {other}"))),
    })
}

fn read_u32<R: Read>(input: &mut R) -> Result<u32, StorageError> {
    let mut buf = [0u8; 4];
    input.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(input: &mut R) -> Result<u64, StorageError> {
    let mut buf = [0u8; 8];
    input.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f64<R: Read>(input: &mut R) -> Result<f64, StorageError> {
    let mut buf = [0u8; 8];
    input.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

/// Round-trip aid for [`MelodyEntry`]-level assertions in tests.
pub fn entries_equal(a: &MelodyEntry, b: &MelodyEntry) -> bool {
    a.song() == b.song() && a.phrase() == b.phrase() && a.melody() == b.melody()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hum_music::SongbookConfig;

    fn sample() -> (MelodyDatabase, QbhConfig) {
        let db = MelodyDatabase::from_songbook(&SongbookConfig {
            songs: 4,
            phrases_per_song: 3,
            ..SongbookConfig::default()
        });
        let config = QbhConfig {
            transform: TransformKind::Dft,
            backend: Backend::Grid,
            warping_width: 0.07,
            ..QbhConfig::default()
        };
        (db, config)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database(&mut bytes, &db, &config).unwrap();
        let (back_db, back_config) = read_database(&mut bytes.as_slice()).unwrap();
        assert_eq!(back_config, config);
        assert_eq!(back_db.len(), db.len());
        for (a, b) in db.entries().iter().zip(back_db.entries()) {
            assert!(entries_equal(a, b));
            assert_eq!(a.id(), b.id());
        }
    }

    #[test]
    fn file_roundtrip() {
        let (db, config) = sample();
        let path = std::env::temp_dir().join(format!("humidx-test-{}.humidx", std::process::id()));
        save(&path, &db, &config).unwrap();
        let (back_db, back_config) = load(&path).unwrap();
        assert_eq!(back_config, config);
        assert_eq!(back_db.len(), db.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_database(&mut &b"NOTHUMIDX....."[..]).unwrap_err();
        assert!(matches!(err, StorageError::BadMagic), "{err}");
    }

    #[test]
    fn truncation_rejected_at_every_prefix() {
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database(&mut bytes, &db, &config).unwrap();
        // Every strict prefix must fail cleanly (never panic, never succeed).
        for cut in [0, 4, 8, 12, 30, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                read_database(&mut &bytes[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn corrupt_tags_and_notes_rejected() {
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database(&mut bytes, &db, &config).unwrap();
        // Transform tag lives right after magic + 3 u32 + f64.
        let tag_at = 8 + 12 + 8;
        let mut bad = bytes.clone();
        bad[tag_at] = 99;
        assert!(matches!(
            read_database(&mut bad.as_slice()),
            Err(StorageError::Corrupt(_))
        ));
        let mut bad = bytes.clone();
        bad[tag_at + 1] = 99; // backend tag
        assert!(matches!(
            read_database(&mut bad.as_slice()),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn loaded_database_builds_an_equivalent_system() {
        use crate::system::QbhSystem;
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database(&mut bytes, &db, &config).unwrap();
        let (back_db, back_config) = read_database(&mut bytes.as_slice()).unwrap();

        let original = QbhSystem::build(&db, &config);
        let restored = QbhSystem::build(&back_db, &back_config);
        let query = db.entry(5).unwrap().melody().to_time_series(4);
        let a: Vec<u64> = original.query_series(&query, 4).matches.iter().map(|m| m.id).collect();
        let b: Vec<u64> = restored.query_series(&query, 4).matches.iter().map(|m| m.id).collect();
        assert_eq!(a, b);
    }
}
