//! Binary persistence for melody databases.
//!
//! A production QBH service builds its database once and serves many
//! queries. This module defines a small versioned binary format (`HUMIDX`)
//! holding the melody database together with the [`QbhConfig`] it should be
//! indexed under; loading rebuilds the (main-memory) index deterministically
//! with [`crate::system::QbhSystem::build`]. Melody content — not index pages — is what is
//! persisted: the index is cheap to rebuild and its in-memory layout is not
//! a stable contract.
//!
//! # Format versions
//!
//! * **`HUMIDX01`** (legacy, read-only here): magic, raw config fields,
//!   entry count, entries. No checksums; [`save`] no longer produces it but
//!   [`read_database`] still accepts it, and [`write_database_v1`] keeps the
//!   writer around for compatibility tests.
//! * **`HUMIDX02`** (previous): the same logical content, framed for
//!   durability —
//!
//!   ```text
//!   [ magic "HUMIDX02"                        8 bytes ]
//!   [ config section body                    26 bytes ]
//!   [ CRC32(config body)                      4 bytes ]
//!   [ entries section: count u64, entries…     varies ]
//!   [ CRC32(entries section body)             4 bytes ]
//!   [ CRC32(every preceding byte)             4 bytes ]  ← whole-file footer
//!   ```
//!
//!   Every section carries its own CRC32 (IEEE) so corruption is localized
//!   in error messages, and the footer checksums the entire file so *any*
//!   single-bit corruption — including inside the section CRCs themselves —
//!   fails loudly instead of round-tripping different data. Trailing bytes
//!   after the footer are rejected. [`write_database_v2`] keeps the writer
//!   for compatibility tests; the reader still accepts the format (as one
//!   shard).
//! * **`HUMIDX03`** (current): the v2 framing with the corpus partitioned
//!   into per-shard sections, so a sharded server can persist and reload the
//!   exact partition it serves from —
//!
//!   ```text
//!   [ magic "HUMIDX03"                        8 bytes ]
//!   [ config section body (v2 body + shards) 30 bytes ]
//!   [ CRC32(config body)                      4 bytes ]
//!   per shard 0..shards, in shard order:
//!   [ shard section: count u64, entries…       varies ]
//!   [ CRC32(shard section body)               4 bytes ]
//!   [ CRC32(every preceding byte)             4 bytes ]  ← whole-file footer
//!   ```
//!
//!   v3 entries carry an explicit `u64` melody id before the v1/v2 entry
//!   body (ids are positional in v1/v2, but a shard holds a non-contiguous
//!   id subset). The reader verifies every id against
//!   [`hum_core::shard::shard_for`]`(id, shards)` — membership in the wrong
//!   section is corruption, not a re-partition — and requires the union of
//!   ids to be exactly `0..count` so the rebuilt database assigns the same
//!   positional ids the file was written with. v1/v2 files load with
//!   `shards = 1`.
//!
//! # Durability
//!
//! [`save`] is atomic: it writes to a sibling temp file named with the pid
//! *and* a process-wide sequence number (so concurrent saves — even to the
//! same path — never share a temp file), flushes and `sync_all`s it, then
//! `rename`s it into place. A crash at any point leaves either the
//! previous complete snapshot or the new one — never a torn file; an
//! orphaned temp from a crashed writer is ignored by loads and never
//! adopted or overwritten by later saves (each save owns a fresh name and
//! cleans up only its own temp on error).
//!
//! # Robustness
//!
//! Readers never trust header counts: preallocation is clamped to a small
//! constant and vectors grow only as entries actually parse, so a 30-byte
//! file claiming 100 million melodies cannot reserve gigabytes. Every
//! injected fault — short write, I/O error at byte N, bit flip, truncation —
//! surfaces as a typed [`StorageError`] (see `tests/storage_faults.rs` and
//! [`crate::fault`]); library code here never panics on untrusted input.

use std::collections::HashSet;
use std::io::{self, Read, Write};
use std::path::Path;

use hum_core::obs::{Metric, MetricsSink};
use hum_core::plan::{CandidateEvidence, PlanFamily, TransformPlan};
use hum_core::shard::shard_for;
use hum_music::{Melody, Note};

use crate::corpus::{MelodyDatabase, MelodyEntry};
use crate::system::{Backend, QbhConfig, TransformChoice, TransformKind};

/// Legacy file magic (8 bytes): name plus format version 1.
const MAGIC_V1: &[u8; 8] = b"HUMIDX01";

/// Previous file magic (8 bytes): name plus format version 2.
const MAGIC_V2: &[u8; 8] = b"HUMIDX02";

/// Current file magic (8 bytes): name plus format version 3 (sharded).
const MAGIC_V3: &[u8; 8] = b"HUMIDX03";

/// File magic (8 bytes) for version 4: the v3 layout plus a trailing
/// transform-plan section (see [`write_plan_section`]). Only produced when
/// there is plan evidence to persist; plan-free snapshots stay `HUMIDX03`.
const MAGIC_V4: &[u8; 8] = b"HUMIDX04";

/// Hard cap on the candidate-evidence rows a persisted plan may claim
/// (4 families × a handful of grid dimensions in practice).
const MAX_PLAN_CANDIDATES: u32 = 1024;

/// Serialized size of the fixed config section body (v1/v2).
const CONFIG_BODY_LEN: usize = 26;

/// Serialized size of the fixed config section body (v3): the v2 body plus
/// the `u32` shard count.
pub(crate) const CONFIG_BODY_LEN_V3: usize = CONFIG_BODY_LEN + 4;

/// Hard cap on the shard count a file may claim (far above any sensible
/// serving fan-out; bounds per-shard bookkeeping on untrusted files).
const MAX_SHARDS: usize = 4096;

/// Hard cap on the melody count a file may claim.
pub(crate) const MAX_MELODIES: u64 = 100_000_000;

/// Hard cap on the note count of a single melody.
const MAX_NOTES: u32 = 1_000_000;

/// Hard cap on a single note's duration in beats.
const MAX_NOTE_BEATS: f64 = 1e6;

/// Hard cap on a melody's total duration in beats (bounds the time-series
/// length [`crate::system::QbhSystem::build`] will render).
const MAX_MELODY_BEATS: f64 = 1e7;

/// Upper bound on speculative preallocation from untrusted header counts.
/// Vectors grow past this only as entries actually parse.
const PREALLOC_CAP: usize = 1024;

/// Errors while reading or writing a `HUMIDX` file.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure (includes short writes and truncated reads).
    Io(io::Error),
    /// Not a `HUMIDX` file, or an unsupported version.
    BadMagic,
    /// Structurally invalid content.
    Corrupt(String),
    /// A section or the whole-file footer failed its CRC32 check; the
    /// payload names the section ("config", "entries", or "file").
    Checksum(&'static str),
    /// The in-memory database or configuration cannot be represented in the
    /// format (field overflows `u32`, duplicate provenance, invalid note…).
    /// Returned by writers instead of silently truncating.
    Unrepresentable(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::BadMagic => write!(f, "not a HUMIDX file (or unsupported version)"),
            StorageError::Corrupt(msg) => write!(f, "corrupt HUMIDX file: {msg}"),
            StorageError::Checksum(section) => {
                write!(f, "corrupt HUMIDX file: {section} checksum mismatch")
            }
            StorageError::Unrepresentable(msg) => {
                write!(f, "cannot serialize database: {msg}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, polynomial 0xEDB88320) — self-contained, table-driven.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Running CRC32 state.
#[derive(Clone, Copy)]
struct Crc32 {
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ CRC32_TABLE[idx];
        }
    }

    fn finish(self) -> u32 {
        !self.state
    }
}

/// CRC32 (IEEE) of a byte slice — the checksum the `HUMIDX02` sections and
/// footer use. Public so tests and tools can recompute checksums when
/// crafting or repairing files.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

// ---------------------------------------------------------------------------
// Checksumming, byte-counting reader/writer adapters.

/// Write adapter tracking the whole-file CRC, the current section CRC, and
/// the byte count.
pub(crate) struct SnapshotWriter<'a, W: Write> {
    inner: &'a mut W,
    bytes: u64,
    file_crc: Crc32,
    section_crc: Crc32,
}

impl<'a, W: Write> SnapshotWriter<'a, W> {
    pub(crate) fn new(inner: &'a mut W) -> Self {
        SnapshotWriter { inner, bytes: 0, file_crc: Crc32::new(), section_crc: Crc32::new() }
    }

    /// Writes bytes that belong to the current section.
    pub(crate) fn put(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.inner.write_all(bytes)?;
        self.bytes += bytes.len() as u64;
        self.file_crc.update(bytes);
        self.section_crc.update(bytes);
        Ok(())
    }

    /// Resets the section CRC for the next section.
    pub(crate) fn begin_section(&mut self) {
        self.section_crc = Crc32::new();
    }

    /// Writes the current section's CRC32 (covered by the file CRC but not
    /// by any section CRC) and resets the section state.
    pub(crate) fn finish_section(&mut self) -> Result<(), StorageError> {
        let sum = self.section_crc.finish().to_le_bytes();
        self.inner.write_all(&sum)?;
        self.bytes += sum.len() as u64;
        self.file_crc.update(&sum);
        self.section_crc = Crc32::new();
        Ok(())
    }

    /// Writes the whole-file footer CRC32 (checksums everything before it).
    pub(crate) fn finish_file(&mut self) -> Result<(), StorageError> {
        let sum = self.file_crc.finish().to_le_bytes();
        self.inner.write_all(&sum)?;
        self.bytes += sum.len() as u64;
        Ok(())
    }

    /// Total bytes written so far (including section and footer CRCs).
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Read adapter mirroring [`SnapshotWriter`].
pub(crate) struct SnapshotReader<'a, R: Read> {
    inner: &'a mut R,
    bytes: u64,
    file_crc: Crc32,
    section_crc: Crc32,
}

impl<'a, R: Read> SnapshotReader<'a, R> {
    pub(crate) fn new(inner: &'a mut R) -> Self {
        SnapshotReader { inner, bytes: 0, file_crc: Crc32::new(), section_crc: Crc32::new() }
    }

    /// Reads bytes that belong to the current section.
    pub(crate) fn take(&mut self, buf: &mut [u8]) -> Result<(), StorageError> {
        self.inner.read_exact(buf)?;
        self.bytes += buf.len() as u64;
        self.file_crc.update(buf);
        self.section_crc.update(buf);
        Ok(())
    }

    pub(crate) fn begin_section(&mut self) {
        self.section_crc = Crc32::new();
    }

    /// Reads a stored section CRC32 and checks it against the bytes read
    /// since [`SnapshotReader::begin_section`].
    pub(crate) fn verify_section(&mut self, section: &'static str) -> Result<(), StorageError> {
        let expected = self.section_crc.finish();
        let mut buf = [0u8; 4];
        self.inner.read_exact(&mut buf)?;
        self.bytes += 4;
        self.file_crc.update(&buf);
        self.section_crc = Crc32::new();
        if u32::from_le_bytes(buf) != expected {
            return Err(StorageError::Checksum(section));
        }
        Ok(())
    }

    /// Reads the whole-file footer CRC32, checks it, and rejects trailing
    /// bytes after it.
    pub(crate) fn verify_footer(&mut self) -> Result<(), StorageError> {
        let expected = self.file_crc.finish();
        let mut buf = [0u8; 4];
        self.inner.read_exact(&mut buf)?;
        self.bytes += 4;
        if u32::from_le_bytes(buf) != expected {
            return Err(StorageError::Checksum("file"));
        }
        let mut probe = [0u8; 1];
        match self.inner.read_exact(&mut probe) {
            Ok(()) => Err(StorageError::Corrupt("trailing bytes after footer".into())),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(()),
            Err(e) => Err(StorageError::Io(e)),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StorageError> {
        let mut buf = [0u8; 4];
        self.take(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StorageError> {
        let mut buf = [0u8; 8];
        self.take(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, StorageError> {
        let mut buf = [0u8; 8];
        self.take(&mut buf)?;
        Ok(f64::from_le_bytes(buf))
    }
}

// ---------------------------------------------------------------------------
// Validation shared by readers and writers.

/// Checks that a configuration is structurally sound *and* buildable — every
/// constraint a [`crate::system::QbhSystem::build`] would otherwise assert on, so an
/// untrusted file can never turn into a panic after a successful load.
pub(crate) fn validate_config(config: &QbhConfig) -> Result<(), String> {
    if config.normal_length == 0 || config.feature_dims == 0 || config.samples_per_beat == 0 {
        return Err("zero-sized configuration field".into());
    }
    if config.page_bytes == 0 {
        return Err("zero page size".into());
    }
    if !(0.0..=1.0).contains(&config.warping_width) {
        return Err(format!("warping width {}", config.warping_width));
    }
    if config.normal_length > 1 << 20 {
        return Err(format!("implausible normal length {}", config.normal_length));
    }
    if config.samples_per_beat > 1 << 16 {
        return Err(format!("implausible samples per beat {}", config.samples_per_beat));
    }
    if config.page_bytes > 1 << 30 {
        return Err(format!("implausible page size {}", config.page_bytes));
    }
    if config.shards == 0 {
        return Err("zero shard count".into());
    }
    if config.shards > MAX_SHARDS {
        return Err(format!("implausible shard count {}", config.shards));
    }
    if config.feature_dims > config.normal_length {
        return Err(format!(
            "feature dims {} exceed normal length {}",
            config.feature_dims, config.normal_length
        ));
    }
    let Some(kind) = config.fixed_transform() else {
        return Err(
            "unresolved TransformChoice::Auto; the planner must resolve it before a \
             configuration is persisted or validated"
                .into(),
        );
    };
    if matches!(kind, TransformKind::NewPaa | TransformKind::KeoghPaa)
        && !config.normal_length.is_multiple_of(config.feature_dims)
    {
        return Err(format!(
            "PAA frame count {} must divide normal length {}",
            config.feature_dims, config.normal_length
        ));
    }
    if config.backend == Backend::RStar {
        let leaf_entry = config.feature_dims * 8 + 8;
        if config.page_bytes / leaf_entry < 4 {
            return Err(format!(
                "page size {} too small for an R*-tree over {} dims",
                config.page_bytes, config.feature_dims
            ));
        }
    }
    Ok(())
}

pub(crate) fn as_u32(value: usize, what: &str) -> Result<u32, StorageError> {
    u32::try_from(value)
        .map_err(|_| StorageError::Unrepresentable(format!("{what} {value} overflows u32")))
}

/// Checks one note against the invariants both reader and writer enforce.
fn validate_note(pitch: u8, beats: f64) -> Result<(), String> {
    if pitch > 127 {
        return Err(format!("invalid note (pitch {pitch})"));
    }
    if !beats.is_finite() || beats <= 0.0 || beats > MAX_NOTE_BEATS {
        return Err(format!("invalid note (pitch {pitch}, beats {beats})"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Writers.

/// Serializes a database and its indexing configuration in the current
/// (`HUMIDX03`) format: one section per shard, entries routed by
/// [`shard_for`]`(id, config.shards)`. Returns the number of bytes written.
///
/// # Errors
/// [`StorageError::Unrepresentable`] when a field would overflow its on-disk
/// width (no silent `as u32` truncation), when provenance pairs collide, or
/// when a melody is empty/invalid; [`StorageError::Io`] on write failures.
pub fn write_database<W: Write>(
    out: &mut W,
    db: &MelodyDatabase,
    config: &QbhConfig,
) -> Result<u64, StorageError> {
    write_database_planned(out, db, config, None)
}

/// [`write_database`] with optional transform-plan evidence. With a plan the
/// file is written as `HUMIDX04`: the exact v3 layout plus one trailing plan
/// section (before the footer); without one it is byte-identical `HUMIDX03`.
///
/// # Errors
/// As [`write_database`], plus [`StorageError::Unrepresentable`] for a plan
/// with more than [`MAX_PLAN_CANDIDATES`] evidence rows.
pub fn write_database_planned<W: Write>(
    out: &mut W,
    db: &MelodyDatabase,
    config: &QbhConfig,
    plan: Option<&TransformPlan>,
) -> Result<u64, StorageError> {
    validate_config(config).map_err(StorageError::Unrepresentable)?;
    if db.len() as u64 > MAX_MELODIES {
        return Err(StorageError::Unrepresentable(format!(
            "melody count {} exceeds the format cap {MAX_MELODIES}",
            db.len()
        )));
    }
    let mut seen = HashSet::with_capacity(db.len().min(PREALLOC_CAP));
    for entry in db.entries() {
        if !seen.insert((entry.song(), entry.phrase())) {
            return Err(StorageError::Unrepresentable(format!(
                "duplicate provenance (song {}, phrase {})",
                entry.song(),
                entry.phrase()
            )));
        }
    }
    // Partition by id hash; database order is ascending id, so every bucket
    // comes out id-sorted too.
    let mut buckets: Vec<Vec<&MelodyEntry>> = vec![Vec::new(); config.shards];
    for entry in db.entries() {
        buckets[shard_for(entry.id(), config.shards)].push(entry);
    }

    let mut dst = SnapshotWriter::new(out);
    dst.put(if plan.is_some() { MAGIC_V4 } else { MAGIC_V3 })?;
    dst.begin_section();
    write_config(&mut dst, config)?;
    dst.put(&as_u32(config.shards, "shard count")?.to_le_bytes())?;
    dst.finish_section()?;
    for bucket in &buckets {
        dst.begin_section();
        dst.put(&(bucket.len() as u64).to_le_bytes())?;
        for entry in bucket {
            dst.put(&entry.id().to_le_bytes())?;
            write_entry(&mut dst, entry)?;
        }
        dst.finish_section()?;
    }
    if let Some(plan) = plan {
        write_plan_section(&mut dst, plan)?;
    }
    dst.finish_file()?;
    Ok(dst.bytes)
}

/// Serializes in the previous `HUMIDX02` format (single entries section, no
/// per-id routing), returning the number of bytes written. Kept for
/// compatibility tests; [`save`] always writes `HUMIDX03`.
///
/// # Errors
/// As [`write_database`], plus [`StorageError::Unrepresentable`] when
/// `config.shards > 1` — the v2 format cannot record a partition.
pub fn write_database_v2<W: Write>(
    out: &mut W,
    db: &MelodyDatabase,
    config: &QbhConfig,
) -> Result<u64, StorageError> {
    validate_config(config).map_err(StorageError::Unrepresentable)?;
    if config.shards > 1 {
        return Err(StorageError::Unrepresentable(format!(
            "HUMIDX02 cannot represent a corpus sharded {} ways",
            config.shards
        )));
    }
    let mut dst = SnapshotWriter::new(out);
    dst.put(MAGIC_V2)?;

    dst.begin_section();
    write_config(&mut dst, config)?;
    dst.finish_section()?;

    dst.begin_section();
    if db.len() as u64 > MAX_MELODIES {
        return Err(StorageError::Unrepresentable(format!(
            "melody count {} exceeds the format cap {MAX_MELODIES}",
            db.len()
        )));
    }
    dst.put(&(db.len() as u64).to_le_bytes())?;
    let mut seen = HashSet::with_capacity(db.len().min(PREALLOC_CAP));
    for entry in db.entries() {
        if !seen.insert((entry.song(), entry.phrase())) {
            return Err(StorageError::Unrepresentable(format!(
                "duplicate provenance (song {}, phrase {})",
                entry.song(),
                entry.phrase()
            )));
        }
        write_entry(&mut dst, entry)?;
    }
    dst.finish_section()?;
    dst.finish_file()?;
    Ok(dst.bytes)
}

/// Serializes in the legacy `HUMIDX01` format (no checksums, no duplicate-
/// provenance rejection), returning the number of bytes written. Kept for
/// compatibility tests; [`save`] always writes `HUMIDX03`.
///
/// # Errors
/// Same overflow and note-validity errors as [`write_database`], plus
/// [`StorageError::Unrepresentable`] when `config.shards > 1`.
pub fn write_database_v1<W: Write>(
    out: &mut W,
    db: &MelodyDatabase,
    config: &QbhConfig,
) -> Result<u64, StorageError> {
    validate_config(config).map_err(StorageError::Unrepresentable)?;
    if config.shards > 1 {
        return Err(StorageError::Unrepresentable(format!(
            "HUMIDX01 cannot represent a corpus sharded {} ways",
            config.shards
        )));
    }
    let mut dst = SnapshotWriter::new(out);
    dst.put(MAGIC_V1)?;
    write_config(&mut dst, config)?;
    dst.put(&(db.len() as u64).to_le_bytes())?;
    for entry in db.entries() {
        write_entry(&mut dst, entry)?;
    }
    Ok(dst.bytes)
}

/// Writes the 26-byte config body (identical field layout in v1 and v2).
pub(crate) fn write_config<W: Write>(
    dst: &mut SnapshotWriter<'_, W>,
    config: &QbhConfig,
) -> Result<(), StorageError> {
    dst.put(&as_u32(config.normal_length, "normal length")?.to_le_bytes())?;
    dst.put(&as_u32(config.feature_dims, "feature dims")?.to_le_bytes())?;
    dst.put(&as_u32(config.samples_per_beat, "samples per beat")?.to_le_bytes())?;
    dst.put(&config.warping_width.to_le_bytes())?;
    let kind = config.fixed_transform().ok_or_else(|| {
        StorageError::Unrepresentable(
            "cannot persist an unresolved TransformChoice::Auto configuration".into(),
        )
    })?;
    dst.put(&[transform_tag(kind), backend_tag(config.backend)])?;
    dst.put(&as_u32(config.page_bytes, "page size")?.to_le_bytes())?;
    Ok(())
}

/// Writes one checksummed transform-plan section: the chosen `(family,
/// dims)` with its measured evidence, then every candidate row. Shared by
/// the `HUMIDX04` snapshot and the `HUMMAN02` store manifest.
///
/// ```text
/// [ family u8, dims u32, input_len u32, band u32          ]
/// [ seed u64, sample_len u32, pairs u64                   ]
/// [ mean_tightness f64, est_candidate_ratio f64, score f64]
/// [ candidate count u32, then per candidate:              ]
/// [   family u8, dims u32, tightness f64, ratio f64,      ]
/// [   projection_cost f64, score f64                      ]
/// [ CRC32(section body)                           4 bytes ]
/// ```
pub(crate) fn write_plan_section<W: Write>(
    dst: &mut SnapshotWriter<'_, W>,
    plan: &TransformPlan,
) -> Result<(), StorageError> {
    if plan.candidates.len() as u64 > u64::from(MAX_PLAN_CANDIDATES) {
        return Err(StorageError::Unrepresentable(format!(
            "plan candidate count {} exceeds the format cap {MAX_PLAN_CANDIDATES}",
            plan.candidates.len()
        )));
    }
    dst.begin_section();
    dst.put(&[plan_family_tag(plan.family)])?;
    dst.put(&as_u32(plan.dims, "plan dims")?.to_le_bytes())?;
    dst.put(&as_u32(plan.input_len, "plan input length")?.to_le_bytes())?;
    dst.put(&as_u32(plan.band, "plan band")?.to_le_bytes())?;
    dst.put(&plan.seed.to_le_bytes())?;
    dst.put(&as_u32(plan.sample_len, "plan sample size")?.to_le_bytes())?;
    dst.put(&(plan.pairs as u64).to_le_bytes())?;
    dst.put(&plan.mean_tightness.to_le_bytes())?;
    dst.put(&plan.est_candidate_ratio.to_le_bytes())?;
    dst.put(&plan.score.to_le_bytes())?;
    dst.put(&as_u32(plan.candidates.len(), "plan candidate count")?.to_le_bytes())?;
    for candidate in &plan.candidates {
        dst.put(&[plan_family_tag(candidate.family)])?;
        dst.put(&as_u32(candidate.dims, "candidate dims")?.to_le_bytes())?;
        dst.put(&candidate.mean_tightness.to_le_bytes())?;
        dst.put(&candidate.est_candidate_ratio.to_le_bytes())?;
        dst.put(&candidate.projection_cost.to_le_bytes())?;
        dst.put(&candidate.score.to_le_bytes())?;
    }
    dst.finish_section()
}

/// Reads and validates one transform-plan section (see
/// [`write_plan_section`]): family tags, dimension bounds, `[0, 1]` ranges
/// on tightness and candidate ratio, finite scores, the candidate-count
/// cap, and the presence of the chosen `(family, dims)` among the
/// candidates are all enforced, so untrusted plan bytes surface as typed
/// [`StorageError::Corrupt`] — never a panic, never an inconsistent plan.
pub(crate) fn read_plan_section<R: Read>(
    src: &mut SnapshotReader<'_, R>,
) -> Result<TransformPlan, StorageError> {
    src.begin_section();
    let mut tag = [0u8; 1];
    src.take(&mut tag)?;
    let family = plan_family_from_tag(tag[0])?;
    let dims = src.u32()? as usize;
    let input_len = src.u32()? as usize;
    let band = src.u32()? as usize;
    let seed = src.u64()?;
    let sample_len = src.u32()? as usize;
    let pairs = usize::try_from(src.u64()?)
        .map_err(|_| StorageError::Corrupt("implausible plan pair count".into()))?;
    let mean_tightness = read_unit_interval(src, "plan mean tightness")?;
    let est_candidate_ratio = read_unit_interval(src, "plan candidate ratio")?;
    let score = read_finite(src, "plan score")?;
    if dims == 0 || dims > input_len {
        return Err(StorageError::Corrupt(format!(
            "plan dims {dims} out of range for input length {input_len}"
        )));
    }
    let candidate_count = src.u32()?;
    if candidate_count > MAX_PLAN_CANDIDATES {
        return Err(StorageError::Corrupt(format!(
            "implausible plan candidate count {candidate_count}"
        )));
    }
    let mut candidates = Vec::with_capacity((candidate_count as usize).min(PREALLOC_CAP));
    for _ in 0..candidate_count {
        let mut tag = [0u8; 1];
        src.take(&mut tag)?;
        let family = plan_family_from_tag(tag[0])?;
        let dims = src.u32()? as usize;
        if dims == 0 || dims > input_len {
            return Err(StorageError::Corrupt(format!(
                "candidate dims {dims} out of range for input length {input_len}"
            )));
        }
        let mean_tightness = read_unit_interval(src, "candidate tightness")?;
        let est_candidate_ratio = read_unit_interval(src, "candidate ratio")?;
        let projection_cost = read_finite(src, "candidate projection cost")?;
        if projection_cost < 0.0 {
            return Err(StorageError::Corrupt(format!(
                "negative candidate projection cost {projection_cost}"
            )));
        }
        let score = read_finite(src, "candidate score")?;
        candidates.push(CandidateEvidence {
            family,
            dims,
            mean_tightness,
            est_candidate_ratio,
            projection_cost,
            score,
        });
    }
    src.verify_section("plan")?;
    let plan = TransformPlan {
        family,
        dims,
        input_len,
        band,
        seed,
        sample_len,
        pairs,
        mean_tightness,
        est_candidate_ratio,
        score,
        candidates,
    };
    if plan.chosen().is_none() {
        return Err(StorageError::Corrupt(format!(
            "plan chose {} d={} but holds no matching candidate evidence",
            plan.family.name(),
            plan.dims
        )));
    }
    Ok(plan)
}

/// Reads one `f64` that must land in `[0, 1]`.
fn read_unit_interval<R: Read>(
    src: &mut SnapshotReader<'_, R>,
    what: &str,
) -> Result<f64, StorageError> {
    let value = read_finite(src, what)?;
    if !(0.0..=1.0).contains(&value) {
        return Err(StorageError::Corrupt(format!("{what} {value} outside [0, 1]")));
    }
    Ok(value)
}

/// Reads one `f64` that must be finite.
fn read_finite<R: Read>(src: &mut SnapshotReader<'_, R>, what: &str) -> Result<f64, StorageError> {
    let value = src.f64()?;
    if !value.is_finite() {
        return Err(StorageError::Corrupt(format!("non-finite {what}")));
    }
    Ok(value)
}

fn plan_family_tag(family: PlanFamily) -> u8 {
    match family {
        PlanFamily::NewPaa => 0,
        PlanFamily::KeoghPaa => 1,
        PlanFamily::Dft => 2,
        PlanFamily::Dwt => 3,
    }
}

fn plan_family_from_tag(tag: u8) -> Result<PlanFamily, StorageError> {
    Ok(match tag {
        0 => PlanFamily::NewPaa,
        1 => PlanFamily::KeoghPaa,
        2 => PlanFamily::Dft,
        3 => PlanFamily::Dwt,
        other => return Err(StorageError::Corrupt(format!("unknown plan family tag {other}"))),
    })
}

/// Writes one entry (identical layout in v1 and v2), validating every field
/// instead of truncating.
fn write_entry<W: Write>(
    dst: &mut SnapshotWriter<'_, W>,
    entry: &MelodyEntry,
) -> Result<(), StorageError> {
    dst.put(&as_u32(entry.song(), "song index")?.to_le_bytes())?;
    dst.put(&as_u32(entry.phrase(), "phrase index")?.to_le_bytes())?;
    let melody = entry.melody();
    let notes = as_u32(melody.len(), "melody length")?;
    if notes == 0 {
        return Err(StorageError::Unrepresentable(format!(
            "empty melody (song {}, phrase {})",
            entry.song(),
            entry.phrase()
        )));
    }
    if notes > MAX_NOTES {
        return Err(StorageError::Unrepresentable(format!(
            "melody of {notes} notes exceeds the format cap {MAX_NOTES}"
        )));
    }
    dst.put(&notes.to_le_bytes())?;
    let mut total_beats = 0.0;
    for note in melody.notes() {
        validate_note(note.pitch, note.beats).map_err(StorageError::Unrepresentable)?;
        total_beats += note.beats;
        dst.put(&[note.pitch])?;
        dst.put(&note.beats.to_le_bytes())?;
    }
    if total_beats > MAX_MELODY_BEATS {
        return Err(StorageError::Unrepresentable(format!(
            "melody of {total_beats} total beats exceeds the format cap {MAX_MELODY_BEATS}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Readers.

/// Deserializes a database and configuration, accepting `HUMIDX01` (legacy,
/// unchecksummed), `HUMIDX02` (checksummed, loads as one shard), `HUMIDX03`
/// (checksummed, per-shard sections), and `HUMIDX04` (v3 plus plan
/// evidence, which this form discards) files.
pub fn read_database<R: Read>(input: &mut R) -> Result<(MelodyDatabase, QbhConfig), StorageError> {
    read_database_counted(input).map(|(db, config, _, _)| (db, config))
}

/// [`read_database`], also returning the transform-plan evidence a
/// `HUMIDX04` file carries (`None` for every earlier version).
pub fn read_database_planned<R: Read>(
    input: &mut R,
) -> Result<(MelodyDatabase, QbhConfig, Option<TransformPlan>), StorageError> {
    read_database_counted(input).map(|(db, config, plan, _)| (db, config, plan))
}

/// The full read: database, configuration, optional plan, bytes consumed.
type CountedRead = (MelodyDatabase, QbhConfig, Option<TransformPlan>, u64);

fn read_database_counted<R: Read>(input: &mut R) -> Result<CountedRead, StorageError> {
    let mut src = SnapshotReader::new(input);
    let mut magic = [0u8; 8];
    src.take(&mut magic)?;
    if &magic == MAGIC_V1 {
        read_v1(&mut src).map(|(db, config, bytes)| (db, config, None, bytes))
    } else if &magic == MAGIC_V2 {
        read_v2(&mut src).map(|(db, config, bytes)| (db, config, None, bytes))
    } else if &magic == MAGIC_V3 {
        read_v3(&mut src, false)
    } else if &magic == MAGIC_V4 {
        read_v3(&mut src, true)
    } else {
        Err(StorageError::BadMagic)
    }
}

fn read_v1<R: Read>(
    src: &mut SnapshotReader<'_, R>,
) -> Result<(MelodyDatabase, QbhConfig, u64), StorageError> {
    let mut body = [0u8; CONFIG_BODY_LEN];
    src.take(&mut body)?;
    let config = parse_config(&body)?;
    let count = src.u64()?;
    if count > MAX_MELODIES {
        return Err(StorageError::Corrupt(format!("implausible melody count {count}")));
    }
    // v1 files written by `MelodyDatabase::from_melodies` before provenance
    // was assigned carry (0, 0) for every entry; tolerate exactly that
    // legacy duplicate so old snapshots keep loading.
    let phrases = read_entries(src, count, true)?;
    Ok((MelodyDatabase::from_provenanced(phrases), config, src.bytes))
}

fn read_v2<R: Read>(
    src: &mut SnapshotReader<'_, R>,
) -> Result<(MelodyDatabase, QbhConfig, u64), StorageError> {
    src.begin_section();
    let mut body = [0u8; CONFIG_BODY_LEN];
    src.take(&mut body)?;
    src.verify_section("config")?;
    let config = parse_config(&body)?;

    src.begin_section();
    let count = src.u64()?;
    if count > MAX_MELODIES {
        return Err(StorageError::Corrupt(format!("implausible melody count {count}")));
    }
    let phrases = read_entries(src, count, false)?;
    src.verify_section("entries")?;
    src.verify_footer()?;
    Ok((MelodyDatabase::from_provenanced(phrases), config, src.bytes))
}

/// Reads the shared v3/v4 body after the magic: config section, per-shard
/// sections, then (for v4) the trailing plan section.
fn read_v3<R: Read>(
    src: &mut SnapshotReader<'_, R>,
    with_plan: bool,
) -> Result<CountedRead, StorageError> {
    src.begin_section();
    let mut body = [0u8; CONFIG_BODY_LEN_V3];
    src.take(&mut body)?;
    src.verify_section("config")?;
    let config = parse_config_v3(&body)?;

    let mut entries: Vec<(u64, usize, usize, Melody)> = Vec::new();
    let mut seen_prov: HashSet<(usize, usize)> = HashSet::new();
    let mut seen_ids: HashSet<u64> = HashSet::new();
    let mut total: u64 = 0;
    for shard in 0..config.shards {
        src.begin_section();
        let count = src.u64()?;
        total = total.saturating_add(count);
        if total > MAX_MELODIES {
            return Err(StorageError::Corrupt(format!("implausible melody count {total}")));
        }
        for _ in 0..count {
            let id = src.u64()?;
            if shard_for(id, config.shards) != shard {
                return Err(StorageError::Corrupt(format!(
                    "melody id {id} does not belong in shard {shard} of {}",
                    config.shards
                )));
            }
            if !seen_ids.insert(id) {
                return Err(StorageError::Corrupt(format!("duplicate melody id {id}")));
            }
            let (song, phrase, melody) = read_entry_body(src, &mut seen_prov, false)?;
            entries.push((id, song, phrase, melody));
        }
        src.verify_section("shard")?;
    }
    let plan = if with_plan { Some(read_plan_section(src)?) } else { None };
    src.verify_footer()?;

    // Rebuilding goes through `MelodyDatabase::from_provenanced`, which
    // assigns *positional* ids — so the persisted ids must be exactly
    // 0..count once sorted, or the rebuilt corpus would silently re-id
    // (and therefore re-shard) every melody.
    entries.sort_by_key(|&(id, ..)| id);
    for (position, &(id, ..)) in entries.iter().enumerate() {
        if id != position as u64 {
            return Err(StorageError::Corrupt(format!(
                "melody ids are not dense: expected {position}, found {id}"
            )));
        }
    }
    let phrases = entries.into_iter().map(|(_, song, phrase, melody)| (song, phrase, melody));
    Ok((MelodyDatabase::from_provenanced(phrases.collect()), config, plan, src.bytes))
}

/// Parses and validates the 26-byte v1/v2 config body (always one shard).
fn parse_config(body: &[u8; CONFIG_BODY_LEN]) -> Result<QbhConfig, StorageError> {
    let le_u32 = |at: usize| u32::from_le_bytes([body[at], body[at + 1], body[at + 2], body[at + 3]]);
    let mut ww = [0u8; 8];
    ww.copy_from_slice(&body[12..20]);
    let config = QbhConfig {
        normal_length: le_u32(0) as usize,
        feature_dims: le_u32(4) as usize,
        samples_per_beat: le_u32(8) as usize,
        warping_width: f64::from_le_bytes(ww),
        transform: TransformChoice::Fixed(transform_from_tag(body[20])?),
        backend: backend_from_tag(body[21])?,
        page_bytes: le_u32(22) as usize,
        shards: 1,
    };
    validate_config(&config).map_err(StorageError::Corrupt)?;
    Ok(config)
}

/// Parses and validates the 30-byte v3 config body (v2 body + shard count).
pub(crate) fn parse_config_v3(body: &[u8; CONFIG_BODY_LEN_V3]) -> Result<QbhConfig, StorageError> {
    let mut base = [0u8; CONFIG_BODY_LEN];
    base.copy_from_slice(&body[..CONFIG_BODY_LEN]);
    let mut config = parse_config(&base)?;
    let mut shards = [0u8; 4];
    shards.copy_from_slice(&body[CONFIG_BODY_LEN..]);
    config.shards = u32::from_le_bytes(shards) as usize;
    validate_config(&config).map_err(StorageError::Corrupt)?;
    Ok(config)
}

/// Streams `count` entries, validating each one. Preallocation from the
/// untrusted `count` is clamped to [`PREALLOC_CAP`]; vectors grow only as
/// entries actually parse.
fn read_entries<R: Read>(
    src: &mut SnapshotReader<'_, R>,
    count: u64,
    allow_legacy_zero_duplicates: bool,
) -> Result<Vec<(usize, usize, Melody)>, StorageError> {
    let clamped = usize::try_from(count).unwrap_or(usize::MAX).min(PREALLOC_CAP);
    let mut phrases = Vec::with_capacity(clamped);
    let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(clamped);
    for _ in 0..count {
        phrases.push(read_entry_body(src, &mut seen, allow_legacy_zero_duplicates)?);
    }
    Ok(phrases)
}

/// Parses one entry body (song, phrase, notes) — the layout shared by every
/// format version — enforcing the per-entry invariants.
fn read_entry_body<R: Read>(
    src: &mut SnapshotReader<'_, R>,
    seen: &mut HashSet<(usize, usize)>,
    allow_legacy_zero_duplicates: bool,
) -> Result<(usize, usize, Melody), StorageError> {
    let song = src.u32()? as usize;
    let phrase = src.u32()? as usize;
    let notes = src.u32()?;
    if notes == 0 {
        return Err(StorageError::Corrupt(format!(
            "empty melody (song {song}, phrase {phrase})"
        )));
    }
    if notes > MAX_NOTES {
        return Err(StorageError::Corrupt(format!("implausible note count {notes}")));
    }
    let legacy_zero = allow_legacy_zero_duplicates && song == 0 && phrase == 0;
    if !seen.insert((song, phrase)) && !legacy_zero {
        return Err(StorageError::Corrupt(format!(
            "duplicate provenance (song {song}, phrase {phrase})"
        )));
    }
    let mut melody = Melody::default();
    let mut total_beats = 0.0;
    for _ in 0..notes {
        let mut pitch = [0u8; 1];
        src.take(&mut pitch)?;
        let beats = src.f64()?;
        validate_note(pitch[0], beats).map_err(StorageError::Corrupt)?;
        total_beats += beats;
        if total_beats > MAX_MELODY_BEATS {
            return Err(StorageError::Corrupt(format!(
                "melody exceeds {MAX_MELODY_BEATS} total beats"
            )));
        }
        melody.push(Note::new(pitch[0], beats));
    }
    Ok((song, phrase, melody))
}

// ---------------------------------------------------------------------------
// File-level save/load.

/// Saves to a file path atomically in the current (`HUMIDX03`) format,
/// returning the number of bytes written.
///
/// The snapshot is written to a sibling temp file, flushed and fsynced,
/// then renamed into place: a crash at any point leaves either the old or
/// the new complete snapshot, never a torn file. On error the temp file is
/// removed (best effort) and any previous snapshot at `path` is untouched.
pub fn save(path: &Path, db: &MelodyDatabase, config: &QbhConfig) -> Result<u64, StorageError> {
    save_with(path, db, config, &MetricsSink::Disabled)
}

/// [`save`], recording the outcome and byte count into a metrics sink
/// (`storage.saves` / `storage.save_errors` / `storage.bytes_written`).
pub fn save_with(
    path: &Path,
    db: &MelodyDatabase,
    config: &QbhConfig,
    metrics: &MetricsSink,
) -> Result<u64, StorageError> {
    let result = save_atomic(path, db, config);
    match &result {
        Ok(bytes) => {
            metrics.add(Metric::StorageSaves, 1);
            metrics.add(Metric::StorageBytesWritten, *bytes);
        }
        Err(_) => metrics.add(Metric::StorageSaveErrors, 1),
    }
    result
}

fn save_atomic(path: &Path, db: &MelodyDatabase, config: &QbhConfig) -> Result<u64, StorageError> {
    atomic_write(path, |out| write_database(out, db, config))
}

/// [`save_with`] carrying transform-plan evidence: writes `HUMIDX04` when a
/// plan is present, byte-identical `HUMIDX03` otherwise.
///
/// # Errors
/// As [`save_with`] / [`write_database_planned`].
pub fn save_planned(
    path: &Path,
    db: &MelodyDatabase,
    config: &QbhConfig,
    plan: Option<&TransformPlan>,
    metrics: &MetricsSink,
) -> Result<u64, StorageError> {
    let result = atomic_write(path, |out| write_database_planned(out, db, config, plan));
    match &result {
        Ok(bytes) => {
            metrics.add(Metric::StorageSaves, 1);
            metrics.add(Metric::StorageBytesWritten, *bytes);
        }
        Err(_) => metrics.add(Metric::StorageSaveErrors, 1),
    }
    result
}

/// Process-wide sequence for temp-file names. The pid alone is *not*
/// collision-free: two concurrent saves to the same path from one process
/// (reachable through the server's live-mutation ops) would share a temp
/// file, interleave writes, and could rename torn bytes into place.
static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A temp path next to `path` that no other save — in this process or any
/// other live one — can be using: `<name>.tmp.<pid>.<seq>`.
pub(crate) fn unique_temp_path(path: &Path) -> Result<std::path::PathBuf, StorageError> {
    let file_name = path.file_name().ok_or_else(|| {
        StorageError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("save path {} has no file name", path.display()),
        ))
    })?;
    let seq = TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    Ok(path.with_file_name(format!(
        "{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        seq
    )))
}

/// Durable atomic file replacement: `write` streams into a uniquely-named
/// temp file next to `path`, which is flushed, fsynced, and renamed into
/// place (the parent directory is synced best-effort). A crash at any
/// point leaves either the old or the new complete file, never a torn one.
/// On error only the temp file *this call created* is cleaned up — a
/// concurrent save's temp has a different sequence number and is never
/// touched.
pub(crate) fn atomic_write(
    path: &Path,
    write: impl FnOnce(&mut io::BufWriter<std::fs::File>) -> Result<u64, StorageError>,
) -> Result<u64, StorageError> {
    let tmp = unique_temp_path(path)?;
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut out = io::BufWriter::new(file);
        let bytes = write(&mut out)?;
        out.flush()?;
        let file = out.into_inner().map_err(|e| StorageError::Io(e.into_error()))?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable where the platform allows syncing
        // a directory handle; failure to do so is not an error we can act
        // on.
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(bytes)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Loads from a file path (either format version).
pub fn load(path: &Path) -> Result<(MelodyDatabase, QbhConfig), StorageError> {
    load_with(path, &MetricsSink::Disabled)
}

/// [`load`], recording the outcome and byte count into a metrics sink
/// (`storage.loads` / `storage.load_errors` / `storage.bytes_read`).
pub fn load_with(
    path: &Path,
    metrics: &MetricsSink,
) -> Result<(MelodyDatabase, QbhConfig), StorageError> {
    load_planned(path, metrics).map(|(db, config, _plan)| (db, config))
}

/// [`load_with`], also returning the transform-plan evidence a `HUMIDX04`
/// snapshot carries (`None` for earlier versions).
pub fn load_planned(
    path: &Path,
    metrics: &MetricsSink,
) -> Result<(MelodyDatabase, QbhConfig, Option<TransformPlan>), StorageError> {
    let result = (|| {
        let mut input = io::BufReader::new(std::fs::File::open(path)?);
        read_database_counted(&mut input)
    })();
    match result {
        Ok((db, config, plan, bytes)) => {
            metrics.add(Metric::StorageLoads, 1);
            metrics.add(Metric::StorageBytesRead, bytes);
            Ok((db, config, plan))
        }
        Err(e) => {
            metrics.add(Metric::StorageLoadErrors, 1);
            Err(e)
        }
    }
}

fn transform_tag(t: TransformKind) -> u8 {
    match t {
        TransformKind::NewPaa => 0,
        TransformKind::KeoghPaa => 1,
        TransformKind::Dft => 2,
        TransformKind::Dwt => 3,
        TransformKind::Svd => 4,
    }
}

fn transform_from_tag(tag: u8) -> Result<TransformKind, StorageError> {
    Ok(match tag {
        0 => TransformKind::NewPaa,
        1 => TransformKind::KeoghPaa,
        2 => TransformKind::Dft,
        3 => TransformKind::Dwt,
        4 => TransformKind::Svd,
        other => return Err(StorageError::Corrupt(format!("unknown transform tag {other}"))),
    })
}

fn backend_tag(b: Backend) -> u8 {
    match b {
        Backend::RStar => 0,
        Backend::Grid => 1,
        Backend::Linear => 2,
    }
}

fn backend_from_tag(tag: u8) -> Result<Backend, StorageError> {
    Ok(match tag {
        0 => Backend::RStar,
        1 => Backend::Grid,
        2 => Backend::Linear,
        other => return Err(StorageError::Corrupt(format!("unknown backend tag {other}"))),
    })
}

/// Round-trip aid for [`MelodyEntry`]-level assertions in tests.
pub fn entries_equal(a: &MelodyEntry, b: &MelodyEntry) -> bool {
    a.song() == b.song() && a.phrase() == b.phrase() && a.melody() == b.melody()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::TempFile;
    use hum_music::SongbookConfig;

    fn sample() -> (MelodyDatabase, QbhConfig) {
        let db = MelodyDatabase::from_songbook(&SongbookConfig {
            songs: 4,
            phrases_per_song: 3,
            ..SongbookConfig::default()
        });
        let config = QbhConfig {
            transform: TransformKind::Dft.into(),
            backend: Backend::Grid,
            warping_width: 0.07,
            ..QbhConfig::default()
        };
        (db, config)
    }

    fn assert_same(db: &MelodyDatabase, config: &QbhConfig, back: &(MelodyDatabase, QbhConfig)) {
        assert_eq!(&back.1, config);
        assert_eq!(back.0.len(), db.len());
        for (a, b) in db.entries().iter().zip(back.0.entries()) {
            assert!(entries_equal(a, b));
            assert_eq!(a.id(), b.id());
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database(&mut bytes, &db, &config).unwrap();
        let back = read_database(&mut bytes.as_slice()).unwrap();
        assert_same(&db, &config, &back);
    }

    #[test]
    fn v1_roundtrip_still_supported() {
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database_v1(&mut bytes, &db, &config).unwrap();
        let back = read_database(&mut bytes.as_slice()).unwrap();
        assert_same(&db, &config, &back);
        assert_eq!(back.1.shards, 1, "legacy files load as one shard");
    }

    #[test]
    fn v2_roundtrip_still_supported() {
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database_v2(&mut bytes, &db, &config).unwrap();
        let back = read_database(&mut bytes.as_slice()).unwrap();
        assert_same(&db, &config, &back);
        assert_eq!(back.1.shards, 1, "v2 files load as one shard");
    }

    #[test]
    fn sharded_roundtrip_preserves_partition_and_ids() {
        let (db, config) = sample();
        for shards in [2usize, 5] {
            let config = QbhConfig { shards, ..config };
            let mut bytes = Vec::new();
            write_database(&mut bytes, &db, &config).unwrap();
            let back = read_database(&mut bytes.as_slice()).unwrap();
            assert_same(&db, &config, &back);
            assert_eq!(back.1.shards, shards);
        }
    }

    #[test]
    fn legacy_writers_cannot_claim_a_partition() {
        let (db, config) = sample();
        let config = QbhConfig { shards: 2, ..config };
        for result in [
            write_database_v1(&mut Vec::new(), &db, &config),
            write_database_v2(&mut Vec::new(), &db, &config),
        ] {
            assert!(matches!(result, Err(StorageError::Unrepresentable(_))));
        }
    }

    #[test]
    fn misplaced_and_nondense_ids_rejected() {
        let (db, config) = sample();
        let config = QbhConfig { shards: 2, ..config };
        // Hand-craft a v3 file whose shard-0 section holds an id hashing to
        // shard 1 — every checksum is valid, so only the membership check
        // can catch it.
        // One entry with `id`, placed in `placed` (whether or not that is
        // its home shard); all checksums valid.
        let craft = |id: u64, placed: usize| -> Vec<u8> {
            let mut bytes = Vec::new();
            let mut dst = SnapshotWriter::new(&mut bytes);
            dst.put(MAGIC_V3).unwrap();
            dst.begin_section();
            write_config(&mut dst, &config).unwrap();
            dst.put(&2u32.to_le_bytes()).unwrap();
            dst.finish_section().unwrap();
            for shard in 0..2 {
                dst.begin_section();
                if shard == placed {
                    dst.put(&1u64.to_le_bytes()).unwrap();
                    dst.put(&id.to_le_bytes()).unwrap();
                    write_entry(&mut dst, &db.entries()[0]).unwrap();
                } else {
                    dst.put(&0u64.to_le_bytes()).unwrap();
                }
                dst.finish_section().unwrap();
            }
            dst.finish_file().unwrap();
            bytes
        };
        let foreign_id = (1u64..).find(|&id| shard_for(id, 2) != shard_for(0, 2)).unwrap();
        // Misplaced: an id stored outside its home shard.
        let misplaced = craft(foreign_id, shard_for(0, 2));
        match read_database(&mut misplaced.as_slice()) {
            Err(StorageError::Corrupt(msg)) => {
                assert!(msg.contains("does not belong"), "{msg}")
            }
            other => panic!("expected membership corruption, got {other:?}"),
        }
        // Non-dense: the same id in its real home shard passes membership
        // but must fail the density check (the only id is not 0).
        let nondense = craft(foreign_id, shard_for(foreign_id, 2));
        match read_database(&mut nondense.as_slice()) {
            Err(StorageError::Corrupt(msg)) => assert!(msg.contains("dense"), "{msg}"),
            other => panic!("expected density corruption, got {other:?}"),
        }
        // Sanity: id 0 in its home shard parses.
        let dense = craft(0, shard_for(0, 2));
        let (back, _) = read_database(&mut dense.as_slice()).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn file_roundtrip() {
        let (db, config) = sample();
        let path = TempFile::unique("storage-roundtrip");
        save(path.path(), &db, &config).unwrap();
        let back = load(path.path()).unwrap();
        assert_same(&db, &config, &back);
    }

    #[test]
    fn save_is_atomic_over_an_existing_snapshot() {
        let (db, config) = sample();
        let path = TempFile::unique("storage-atomic");
        save(path.path(), &db, &config).unwrap();

        // A database the writer must reject (song index overflows u32)
        // leaves the previous snapshot untouched and no temp file behind.
        let bad = MelodyDatabase::from_provenanced(vec![(
            u32::MAX as usize + 1,
            0,
            db.entries()[0].melody().clone(),
        )]);
        let err = save(path.path(), &bad, &config).unwrap_err();
        assert!(matches!(err, StorageError::Unrepresentable(_)), "{err}");
        let back = load(path.path()).unwrap();
        assert_same(&db, &config, &back);
        let dir = path.path().parent().unwrap();
        let leftovers = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("storage-atomic"))
            .count();
        assert_eq!(leftovers, 1, "temp files must be cleaned up after a failed save");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_database(&mut &b"NOTHUMIDX....."[..]).unwrap_err();
        assert!(matches!(err, StorageError::BadMagic), "{err}");
    }

    #[test]
    fn truncation_rejected_at_every_prefix() {
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database(&mut bytes, &db, &config).unwrap();
        // Every strict prefix must fail cleanly (never panic, never succeed).
        for cut in [0, 4, 8, 12, 30, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                read_database(&mut &bytes[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database(&mut bytes, &db, &config).unwrap();
        bytes.push(0);
        assert!(matches!(
            read_database(&mut bytes.as_slice()),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_tags_and_notes_rejected() {
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database(&mut bytes, &db, &config).unwrap();
        // The transform/backend tags live at offsets 28/29 (inside the v3
        // config section body at [8, 38)). A bare patch trips the section
        // checksum; with the section CRC recomputed, the typed tag error
        // surfaces instead (the config section is parsed before the
        // footer is reached).
        for tag_at in [28usize, 29] {
            let mut bad = bytes.clone();
            bad[tag_at] = 99;
            assert!(matches!(
                read_database(&mut bad.as_slice()),
                Err(StorageError::Checksum("config"))
            ));
            let crc = crc32(&bad[8..38]).to_le_bytes();
            bad[38..42].copy_from_slice(&crc);
            assert!(matches!(
                read_database(&mut bad.as_slice()),
                Err(StorageError::Corrupt(_))
            ));
        }
    }

    #[test]
    fn checksum_catches_a_flipped_payload_byte() {
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database(&mut bytes, &db, &config).unwrap();
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        assert!(read_database(&mut bad.as_slice()).is_err(), "flipped byte {mid} parsed");
    }

    #[test]
    fn lying_header_count_is_rejected_without_preallocating() {
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database_v1(&mut bytes, &db, &config).unwrap();
        // Patch the count (offset 34 in v1) to claim 99,999,999 melodies,
        // then truncate right after the header: the reader must fail with a
        // typed error instead of reserving gigabytes up front.
        let mut lying = bytes[..42].to_vec();
        lying[34..42].copy_from_slice(&99_999_999u64.to_le_bytes());
        let err = read_database(&mut lying.as_slice()).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "{err}");
        // And a count over the cap is rejected before any entry is read
        // (v3: the first shard section's count sits at offset 42).
        let mut bytes2 = Vec::new();
        write_database(&mut bytes2, &db, &config).unwrap();
        let mut absurd = bytes2[..50].to_vec();
        absurd[42..50].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_database(&mut absurd.as_slice()).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    }

    #[test]
    fn write_overflow_is_an_error_not_a_truncation() {
        let (db, config) = sample();
        // Oversized song index.
        let bad = MelodyDatabase::from_provenanced(vec![(
            u32::MAX as usize + 1,
            0,
            db.entries()[0].melody().clone(),
        )]);
        let err = write_database(&mut Vec::new(), &bad, &config).unwrap_err();
        assert!(matches!(err, StorageError::Unrepresentable(_)), "{err}");
        // Oversized phrase index.
        let bad = MelodyDatabase::from_provenanced(vec![(
            0,
            u32::MAX as usize + 1,
            db.entries()[0].melody().clone(),
        )]);
        let err = write_database(&mut Vec::new(), &bad, &config).unwrap_err();
        assert!(matches!(err, StorageError::Unrepresentable(_)), "{err}");
        // Oversized configuration field.
        let bad_config = QbhConfig { samples_per_beat: u32::MAX as usize + 1, ..config };
        let err = write_database(&mut Vec::new(), &db, &bad_config).unwrap_err();
        assert!(matches!(err, StorageError::Unrepresentable(_)), "{err}");
    }

    #[test]
    fn duplicate_provenance_rejected_on_write_and_read() {
        let (db, config) = sample();
        let melody = db.entries()[0].melody().clone();
        let dup = MelodyDatabase::from_provenanced(vec![
            (1, 2, melody.clone()),
            (1, 2, melody.clone()),
        ]);
        // The v2 writer refuses to produce such a file…
        let err = write_database(&mut Vec::new(), &dup, &config).unwrap_err();
        assert!(matches!(err, StorageError::Unrepresentable(_)), "{err}");
        // …and the reader rejects one crafted through the legacy writer.
        let mut bytes = Vec::new();
        write_database_v1(&mut bytes, &dup, &config).unwrap();
        let err = read_database(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    }

    #[test]
    fn legacy_all_zero_provenance_still_loads() {
        // Old `from_melodies` databases carried (0, 0) for every entry;
        // v1 files like that must keep loading.
        let (db, config) = sample();
        let zeroed = MelodyDatabase::from_provenanced(
            db.entries().iter().map(|e| (0, 0, e.melody().clone())).collect(),
        );
        let mut bytes = Vec::new();
        write_database_v1(&mut bytes, &zeroed, &config).unwrap();
        let (back, _) = read_database(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.len(), db.len());
        assert!(back.entries().iter().all(|e| e.song() == 0 && e.phrase() == 0));
    }

    #[test]
    fn unbuildable_configs_rejected_at_read() {
        let (db, _) = sample();
        // PAA dims that do not divide the normal length would panic inside
        // QbhSystem::build; the reader must reject them instead.
        let bad = QbhConfig {
            transform: TransformKind::NewPaa.into(),
            normal_length: 100,
            feature_dims: 7,
            ..QbhConfig::default()
        };
        let err = write_database(&mut Vec::new(), &db, &bad).unwrap_err();
        assert!(matches!(err, StorageError::Unrepresentable(_)), "{err}");
        // Craft the same config through the byte layout to hit the reader.
        let ok = QbhConfig { transform: TransformKind::Dft.into(), ..QbhConfig::default() };
        let mut bytes = Vec::new();
        write_database_v1(&mut bytes, &db, &ok).unwrap();
        bytes[8..12].copy_from_slice(&100u32.to_le_bytes()); // normal_length
        bytes[12..16].copy_from_slice(&7u32.to_le_bytes()); // feature_dims
        bytes[28] = 0; // transform tag -> NewPaa
        let err = read_database(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    }

    #[test]
    fn metrics_record_save_and_load_outcomes() {
        use hum_core::obs::Metric;
        let (db, config) = sample();
        let sink = MetricsSink::enabled();
        let path = TempFile::unique("storage-metrics");
        let written = save_with(path.path(), &db, &config, &sink).unwrap();
        load_with(path.path(), &sink).unwrap();
        let missing = TempFile::unique("storage-missing");
        assert!(load_with(missing.path(), &sink).is_err());
        let reg = sink.registry().unwrap();
        assert_eq!(reg.get(Metric::StorageSaves), 1);
        assert_eq!(reg.get(Metric::StorageSaveErrors), 0);
        assert_eq!(reg.get(Metric::StorageLoads), 1);
        assert_eq!(reg.get(Metric::StorageLoadErrors), 1);
        assert_eq!(reg.get(Metric::StorageBytesWritten), written);
        assert_eq!(reg.get(Metric::StorageBytesRead), written);
    }

    #[test]
    fn loaded_database_builds_an_equivalent_system() {
        use crate::system::QbhSystem;
        let (db, config) = sample();
        let mut bytes = Vec::new();
        write_database(&mut bytes, &db, &config).unwrap();
        let (back_db, back_config) = read_database(&mut bytes.as_slice()).unwrap();

        let original = QbhSystem::build(&db, &config);
        let restored = QbhSystem::build(&back_db, &back_config);
        let query = db.entry(5).unwrap().melody().to_time_series(4);
        let a: Vec<u64> = original.query_series(&query, 4).matches.iter().map(|m| m.id).collect();
        let b: Vec<u64> = restored.query_series(&query, 4).matches.iter().map(|m| m.id).collect();
        assert_eq!(a, b);
    }
}
