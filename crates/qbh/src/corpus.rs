//! Melody databases (paper §3.2 and §5.3).
//!
//! Two construction paths, mirroring the paper's two corpora:
//!
//! * [`MelodyDatabase::from_songbook`] — the small high-quality corpus
//!   ("50 songs → 1000 phrase melodies") used in the retrieval-quality
//!   experiments;
//! * [`MelodyDatabase::from_midi_roundtrip`] — the large corpus: melodies
//!   are *serialized to Standard MIDI Files and re-extracted* through
//!   `hum-midi`, exercising the exact pipeline the paper used on MIDI files
//!   collected from the Internet (35,000 melodies in §5.3).

use hum_midi::{extract_melody, parse_smf, write_smf, Event, MetaEvent, Smf, Track};
use hum_music::{Melody, Note, Songbook, SongbookConfig};

/// One database melody with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct MelodyEntry {
    id: u64,
    song: usize,
    phrase: usize,
    melody: Melody,
}

impl MelodyEntry {
    /// Database identifier (dense, 0-based).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Index of the source song.
    pub fn song(&self) -> usize {
        self.song
    }

    /// Phrase index within the song.
    pub fn phrase(&self) -> usize {
        self.phrase
    }

    /// The melody itself.
    pub fn melody(&self) -> &Melody {
        &self.melody
    }
}

/// A collection of phrase melodies, the unit the whole-sequence matcher
/// searches over.
#[derive(Debug, Clone, PartialEq)]
pub struct MelodyDatabase {
    entries: Vec<MelodyEntry>,
}

/// MIDI resolution used for round-tripping (ticks per quarter note).
const ROUNDTRIP_TPQ: u16 = 480;

impl MelodyDatabase {
    /// Builds the database directly from a generated songbook.
    pub fn from_songbook(config: &SongbookConfig) -> Self {
        let book = Songbook::generate(config);
        Self::from_phrases(
            book.phrases().into_iter().map(|(s, p, m)| (s, p, m.clone())).collect(),
        )
    }

    /// Builds the database from a songbook, but round-trips every phrase
    /// through an in-memory Standard MIDI File first (write → parse →
    /// extract), as the paper did with Internet MIDI collections.
    ///
    /// # Panics
    /// Panics if a round-trip fails — that would be a bug in `hum-midi`.
    pub fn from_midi_roundtrip(config: &SongbookConfig) -> Self {
        let book = Songbook::generate(config);
        let phrases = book
            .phrases()
            .into_iter()
            .map(|(s, p, m)| {
                let smf = melody_to_smf(m, ROUNDTRIP_TPQ);
                let parsed = parse_smf(&write_smf(&smf)).expect("round-trip parse");
                (s, p, melody_from_smf(&parsed, 0))
            })
            .collect();
        Self::from_phrases(phrases)
    }

    /// An empty database, used to exercise error paths in tests.
    #[doc(hidden)]
    pub fn empty() -> Self {
        MelodyDatabase { entries: Vec::new() }
    }

    /// Builds the database from bare melodies. Used when the corpus comes
    /// from external files rather than a songbook: each melody is treated
    /// as its own single-phrase song (`song = position`, `phrase = 0`), so
    /// every entry keeps a distinct `(song, phrase)` provenance pair — the
    /// uniqueness [`crate::storage`] enforces. (Databases persisted before
    /// provenance was assigned carry `(0, 0)` everywhere; the storage
    /// reader still accepts that legacy case for `HUMIDX01` files.)
    pub fn from_melodies(melodies: Vec<Melody>) -> Self {
        Self::from_phrases(melodies.into_iter().enumerate().map(|(i, m)| (i, 0, m)).collect())
    }

    /// Builds the database from `(song, phrase, melody)` triples, e.g. as
    /// deserialized by [`crate::storage`].
    pub fn from_provenanced(phrases: Vec<(usize, usize, Melody)>) -> Self {
        Self::from_phrases(phrases)
    }

    fn from_phrases(phrases: Vec<(usize, usize, Melody)>) -> Self {
        let entries = phrases
            .into_iter()
            .enumerate()
            .map(|(id, (song, phrase, melody))| MelodyEntry { id: id as u64, song, phrase, melody })
            .collect();
        MelodyDatabase { entries }
    }

    /// All entries in id order.
    pub fn entries(&self) -> &[MelodyEntry] {
        &self.entries
    }

    /// Number of melodies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by id.
    pub fn entry(&self, id: u64) -> Option<&MelodyEntry> {
        self.entries.get(id as usize)
    }
}

/// Serializes a melody as a single-track SMF on channel 0.
pub fn melody_to_smf(melody: &Melody, ticks_per_quarter: u16) -> Smf {
    let mut smf = Smf::new(0, ticks_per_quarter);
    let mut track = Track::default();
    track.push(0, Event::Meta(MetaEvent::Tempo(500_000)));
    for note in melody.notes() {
        let ticks = (note.beats * ticks_per_quarter as f64).round() as u32;
        track.push(0, Event::NoteOn { channel: 0, key: note.pitch, velocity: 96 });
        track.push(ticks.max(1), Event::NoteOff { channel: 0, key: note.pitch, velocity: 0 });
    }
    track.push(0, Event::Meta(MetaEvent::EndOfTrack));
    smf.tracks.push(track);
    smf
}

/// Extracts a melody from a parsed SMF channel.
pub fn melody_from_smf(smf: &Smf, channel: u8) -> Melody {
    extract_melody(smf, channel)
        .into_iter()
        .map(|n| Note::new(n.pitch, n.beats.max(1.0 / ROUNDTRIP_TPQ as f64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SongbookConfig {
        SongbookConfig { songs: 6, phrases_per_song: 5, ..SongbookConfig::default() }
    }

    #[test]
    fn songbook_database_has_dense_ids_and_provenance() {
        let db = MelodyDatabase::from_songbook(&small());
        assert_eq!(db.len(), 30);
        for (i, e) in db.entries().iter().enumerate() {
            assert_eq!(e.id(), i as u64);
            assert!(e.song() < 6);
            assert!(e.phrase() < 5);
            assert!(!e.melody().is_empty());
        }
        assert_eq!(db.entry(7).unwrap().id(), 7);
        assert!(db.entry(999).is_none());
    }

    #[test]
    fn midi_roundtrip_preserves_melodies() {
        let direct = MelodyDatabase::from_songbook(&small());
        let round = MelodyDatabase::from_midi_roundtrip(&small());
        assert_eq!(direct.len(), round.len());
        for (a, b) in direct.entries().iter().zip(round.entries()) {
            assert_eq!(a.melody().len(), b.melody().len(), "note counts");
            for (na, nb) in a.melody().notes().iter().zip(b.melody().notes()) {
                assert_eq!(na.pitch, nb.pitch);
                // Quantization to 480 ticks/quarter is exact for the rhythm
                // grid the songbook uses (multiples of 0.5 beats).
                assert!((na.beats - nb.beats).abs() < 1e-9, "{} vs {}", na.beats, nb.beats);
            }
        }
    }

    #[test]
    fn smf_serialization_is_single_track_format0() {
        let db = MelodyDatabase::from_songbook(&small());
        let smf = melody_to_smf(db.entry(0).unwrap().melody(), 480);
        assert_eq!(smf.format, 0);
        assert_eq!(smf.tracks.len(), 1);
        // NoteOn/NoteOff pairs plus tempo and end-of-track.
        let expected = db.entry(0).unwrap().melody().len() * 2 + 2;
        assert_eq!(smf.tracks[0].events.len(), expected);
    }

    #[test]
    fn roundtrip_of_empty_melody() {
        let smf = melody_to_smf(&Melody::default(), 480);
        let parsed = parse_smf(&write_smf(&smf)).unwrap();
        assert!(melody_from_smf(&parsed, 0).is_empty());
    }
}
