//! Fault-injection adapters for storage robustness testing.
//!
//! The durability contract of [`crate::storage`] — every short write, I/O
//! error, bit flip, or truncation surfaces as a typed
//! [`StorageError`](crate::storage::StorageError), never a panic and never
//! silently wrong data — is only worth stating if it is exercised. This
//! module provides the harness: [`FailingWriter`] and [`FailingReader`]
//! wrap any `Write`/`Read` and inject a fault once a byte budget is spent,
//! [`flip_bit`] corrupts serialized images in place, and [`TempFile`] hands
//! out collision-free self-cleaning temp paths for file-level tests.
//!
//! The adapters live in the library (not under `#[cfg(test)]`) so both the
//! crate's unit tests and the `tests/storage_faults.rs` integration suite —
//! plus any downstream crate that persists through this workspace — can
//! drive the same faults.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// What happens when a [`FailingWriter`] or [`FailingReader`] exhausts its
/// byte budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Return an I/O error of the given kind.
    Error(io::ErrorKind),
    /// Pretend the device is full / the stream ended: writes report 0 bytes
    /// accepted (surfacing as `ErrorKind::WriteZero` through `write_all`),
    /// reads report EOF (surfacing as `ErrorKind::UnexpectedEof` through
    /// `read_exact`).
    Cutoff,
}

/// A `Write` adapter that forwards the first `budget` bytes, then injects
/// the configured fault on every subsequent write.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    budget: u64,
    mode: FaultMode,
}

impl<W: Write> FailingWriter<W> {
    /// Forwards `budget` bytes to `inner`, then fails with `mode`.
    pub fn new(inner: W, budget: u64, mode: FaultMode) -> Self {
        FailingWriter { inner, budget, mode }
    }

    /// The wrapped writer (e.g. to inspect the bytes that made it through).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return match self.mode {
                FaultMode::Error(kind) => Err(io::Error::new(kind, "injected write fault")),
                FaultMode::Cutoff => Ok(0),
            };
        }
        let allowed = usize::try_from(self.budget).unwrap_or(usize::MAX).min(buf.len());
        let written = self.inner.write(&buf[..allowed])?;
        self.budget -= written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter that yields the first `budget` bytes, then injects the
/// configured fault on every subsequent read.
#[derive(Debug)]
pub struct FailingReader<R> {
    inner: R,
    budget: u64,
    mode: FaultMode,
}

impl<R: Read> FailingReader<R> {
    /// Yields `budget` bytes from `inner`, then fails with `mode`.
    pub fn new(inner: R, budget: u64, mode: FaultMode) -> Self {
        FailingReader { inner, budget, mode }
    }
}

impl<R: Read> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return match self.mode {
                FaultMode::Error(kind) => Err(io::Error::new(kind, "injected read fault")),
                FaultMode::Cutoff => Ok(0),
            };
        }
        let allowed = usize::try_from(self.budget).unwrap_or(usize::MAX).min(buf.len());
        let read = self.inner.read(&mut buf[..allowed])?;
        self.budget -= read as u64;
        Ok(read)
    }
}

/// Flips one bit of a serialized image in place: bit `bit % 8` of byte
/// `index % bytes.len()`. No-op on an empty slice.
pub fn flip_bit(bytes: &mut [u8], index: usize, bit: u8) {
    if bytes.is_empty() {
        return;
    }
    let at = index % bytes.len();
    bytes[at] ^= 1 << (bit % 8);
}

/// A unique temp-file path that removes the file on drop — including on
/// panic, so a failing test never leaves a stale snapshot behind for the
/// next run (or the next test in the same process) to collide with.
#[derive(Debug)]
pub struct TempFile {
    path: PathBuf,
}

impl TempFile {
    /// A fresh path under the system temp dir, unique across tests in this
    /// process (atomic counter) and across processes (pid). Nothing is
    /// created on disk yet.
    pub fn unique(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("humidx-{tag}-{}-{n}.humidx", std::process::id()));
        TempFile { path }
    }

    /// The path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failing_writer_errors_after_budget() {
        let mut w = FailingWriter::new(Vec::new(), 5, FaultMode::Error(io::ErrorKind::Other));
        let err = w.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(w.into_inner(), b"01234");
    }

    #[test]
    fn short_write_surfaces_as_write_zero() {
        let mut w = FailingWriter::new(Vec::new(), 3, FaultMode::Cutoff);
        let err = w.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn failing_reader_errors_after_budget() {
        let mut r =
            FailingReader::new(&b"0123456789"[..], 4, FaultMode::Error(io::ErrorKind::Other));
        let mut buf = [0u8; 10];
        let err = r.read_exact(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
    }

    #[test]
    fn cutoff_reader_surfaces_as_unexpected_eof() {
        let mut r = FailingReader::new(&b"0123456789"[..], 4, FaultMode::Cutoff);
        let mut buf = [0u8; 10];
        let err = r.read_exact(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn flip_bit_toggles_and_wraps() {
        let mut bytes = vec![0u8; 4];
        flip_bit(&mut bytes, 1, 3);
        assert_eq!(bytes, [0, 8, 0, 0]);
        flip_bit(&mut bytes, 5, 11); // wraps to byte 1, bit 3: toggles back
        assert_eq!(bytes, [0, 0, 0, 0]);
        flip_bit(&mut [], 0, 0); // no-op, no panic
    }

    #[test]
    fn temp_files_are_unique_and_cleaned_up() {
        let a = TempFile::unique("fault-unit");
        let b = TempFile::unique("fault-unit");
        assert_ne!(a.path(), b.path());
        std::fs::write(a.path(), b"x").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
    }
}
