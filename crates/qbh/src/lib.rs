//! The end-to-end Query-by-Humming system (paper §3).
//!
//! Ties every substrate together into the three-component architecture the
//! paper describes:
//!
//! 1. **User humming** — accepted either as raw audio (pitch-tracked by
//!    `hum-audio` at 10 ms frames) or as an already-extracted pitch series
//!    (e.g. from the [`hum_music::HummingSimulator`]);
//! 2. **A database of music** — phrase melodies from a songbook or from
//!    MIDI files round-tripped through `hum-midi` ([`corpus`]);
//! 3. **An index** — the warping index of `hum-core`: normal forms,
//!    container-invariant envelope transforms, and a spatial index with
//!    exact-DTW refinement ([`system`]).
//!
//! [`eval`] adds the paper's evaluation protocol: rank bins for retrieval
//! tables (Tables 2 and 3) and head-to-head comparison with the contour
//! baseline. [`songsearch`] implements the subsequence alternative of §3.2:
//! locating a hummed fragment anywhere inside whole songs.
//!
//! ```
//! use hum_qbh::corpus::MelodyDatabase;
//! use hum_qbh::system::{QbhConfig, QbhSystem};
//! use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};
//!
//! let db = MelodyDatabase::from_songbook(&SongbookConfig {
//!     songs: 10,
//!     phrases_per_song: 4,
//!     ..SongbookConfig::default()
//! });
//! let system = QbhSystem::build(&db, &QbhConfig::default());
//!
//! // Hum phrase 17 and look it up.
//! let mut singer = HummingSimulator::new(SingerProfile::good(), 42);
//! let hum = singer.sing_series(db.entry(17).unwrap().melody(), 0.01);
//! let results = system.query_series(&hum, 10);
//! assert!(results.matches.iter().any(|m| m.id == 17));
//! ```

pub mod corpus;
pub mod eval;
pub mod fault;
pub mod serve;
pub mod songsearch;
pub mod storage;
pub mod store;
pub mod system;

pub use corpus::{MelodyDatabase, MelodyEntry};
pub use system::{Backend, QbhConfig, QbhSystem, TransformKind};
