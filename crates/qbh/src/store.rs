//! The on-disk layer of the LSM-style storage engine.
//!
//! A store directory holds:
//!
//! * **Segment files** (`seg-<id>.humseg`, format `HUMSEG01`) — immutable,
//!   checksummed batches of *normal-form* melodies flushed from the
//!   memtable. Unlike the `HUMIDX` snapshot (which persists notes and
//!   re-renders on load), segments persist the normalized series directly:
//!   live inserts arrive as pitch series with no note representation, and
//!   storing the exact `f64` bits is what keeps a reloaded store
//!   bit-identical to the memtable it was flushed from.
//! * **One manifest** (`MANIFEST`, format `HUMMAN01`, or `HUMMAN02` when
//!   the store carries transform-plan evidence — the same layout plus one
//!   trailing plan section) — the authoritative, atomically-replaced list
//!   of live segments and tombstoned melody ids.
//!   A segment file not named by the manifest does not exist as far as the
//!   store is concerned (it is a crash leftover and is ignored), so every
//!   multi-file state change reduces to one atomic manifest rename.
//!
//! Both formats reuse the `HUMIDX` framing: per-section CRC32s plus a
//! whole-file footer CRC, bounded reads, and typed [`StorageError`]s —
//! untrusted bytes can never panic this module.
//!
//! # File formats
//!
//! ```text
//! HUMSEG01:                              HUMMAN01:
//! [ magic "HUMSEG01"          8 bytes ]  [ magic "HUMMAN01"          8 bytes ]
//! [ config body (v3)         30 bytes ]  [ config body (v3)         30 bytes ]
//! [ CRC32(config)             4 bytes ]  [ CRC32(config)             4 bytes ]
//! [ entries: count u64,               ]  [ segments: count u64,              ]
//! [   id u64, song u32, phrase u32,   ]  [   (id u64, melodies u64)…         ]
//! [   series normal_length × f64 …    ]  [ CRC32(segments)           4 bytes ]
//! [ CRC32(entries)            4 bytes ]  [ tombstones: count u64, id u64…    ]
//! [ CRC32(file)               4 bytes ]  [ CRC32(tombstones)         4 bytes ]
//!                                        [ CRC32(file)               4 bytes ]
//! ```
//!
//! Entry ids within a segment, segment ids within the manifest, and
//! tombstone ids are all strictly ascending — duplicates are structural
//! corruption, caught at read time.
//!
//! # Load-time validation
//!
//! [`open_store`] validates the manifest's segment list the way the
//! `HUMIDX03` reader validates shard membership: out-of-order or duplicate
//! segment ids, a missing segment file, a segment whose config or entry
//! count disagrees with the manifest, melody ids overlapping across
//! segments, and tombstones that reference no stored melody are all typed
//! [`StorageError::Corrupt`] — never a panic, never a silent skip.

use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use hum_core::plan::TransformPlan;

use crate::storage::{
    as_u32, atomic_write, parse_config_v3, read_plan_section, validate_config, write_config,
    write_plan_section, SnapshotReader, SnapshotWriter, StorageError, CONFIG_BODY_LEN_V3,
    MAX_MELODIES,
};
use crate::system::QbhConfig;

/// Segment file magic (8 bytes).
const MAGIC_SEG: &[u8; 8] = b"HUMSEG01";

/// Manifest file magic (8 bytes).
const MAGIC_MAN: &[u8; 8] = b"HUMMAN01";

/// Manifest file magic (8 bytes) for version 2: the v1 layout plus a
/// trailing transform-plan section. Only produced when there is plan
/// evidence to persist; plan-free manifests stay `HUMMAN01`.
const MAGIC_MAN2: &[u8; 8] = b"HUMMAN02";

/// Removal-log file magic (8 bytes) — see [`write_removal_log`].
const MAGIC_RML: &[u8; 8] = b"HUMRML01";

/// The manifest's file name inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Hard cap on the segment count a manifest may claim.
const MAX_SEGMENTS: u64 = 1 << 20;

/// Upper bound on speculative preallocation from untrusted header counts.
const PREALLOC_CAP: usize = 1024;

/// One melody inside a segment file: provenance plus the normal-form
/// series (exact `f64` bits, already rendered and normalized).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentEntry {
    /// Corpus-unique melody id.
    pub id: u64,
    /// Source song index.
    pub song: usize,
    /// Phrase index within the song.
    pub phrase: usize,
    /// The normal-form series, exactly `normal_length` samples.
    pub series: Vec<f64>,
}

/// A manifest's record of one live segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRef {
    /// Segment id (monotonic; also names the file).
    pub id: u64,
    /// Number of melodies the segment file must hold.
    pub count: u64,
}

/// The decoded manifest: the store's configuration, its live segments in
/// ascending id order, and the tombstoned melody ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The indexing configuration every segment must agree with.
    pub config: QbhConfig,
    /// Live segments, ascending by id.
    pub segments: Vec<SegmentRef>,
    /// Removed melody ids whose entries still sit in some segment
    /// (cleared by compaction), ascending.
    pub tombstones: Vec<u64>,
    /// Transform-plan evidence for stores created under
    /// [`crate::system::TransformChoice::Auto`] (`None` for fixed-transform
    /// stores and pre-plan manifests). Rewritten verbatim on every flush,
    /// removal, and compaction, so the evidence survives the store's whole
    /// lifecycle.
    pub plan: Option<TransformPlan>,
}

/// The file name of segment `id` inside a store directory.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:08}.humseg")
}

/// The path of segment `id` inside `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(segment_file_name(id))
}

/// The manifest path inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

// ---------------------------------------------------------------------------
// Segment codec.

/// Serializes a segment. Entries must be strictly ascending by id, with
/// series of exactly `config.normal_length` finite samples. Returns the
/// byte count.
///
/// # Errors
/// [`StorageError::Unrepresentable`] on violation of any invariant above;
/// [`StorageError::Io`] on write failures.
pub fn write_segment<W: Write>(
    out: &mut W,
    config: &QbhConfig,
    entries: &[SegmentEntry],
) -> Result<u64, StorageError> {
    validate_config(config).map_err(StorageError::Unrepresentable)?;
    if entries.len() as u64 > MAX_MELODIES {
        return Err(StorageError::Unrepresentable(format!(
            "melody count {} exceeds the format cap {MAX_MELODIES}",
            entries.len()
        )));
    }
    let mut dst = SnapshotWriter::new(out);
    dst.put(MAGIC_SEG)?;
    dst.begin_section();
    write_config(&mut dst, config)?;
    dst.put(&as_u32(config.shards, "shard count")?.to_le_bytes())?;
    dst.finish_section()?;

    dst.begin_section();
    dst.put(&(entries.len() as u64).to_le_bytes())?;
    let mut previous: Option<u64> = None;
    for entry in entries {
        if previous.is_some_and(|p| p >= entry.id) {
            return Err(StorageError::Unrepresentable(format!(
                "segment entry ids must be strictly ascending (id {})",
                entry.id
            )));
        }
        previous = Some(entry.id);
        if entry.series.len() != config.normal_length {
            return Err(StorageError::Unrepresentable(format!(
                "melody {} has {} samples, expected normal length {}",
                entry.id,
                entry.series.len(),
                config.normal_length
            )));
        }
        dst.put(&entry.id.to_le_bytes())?;
        dst.put(&as_u32(entry.song, "song index")?.to_le_bytes())?;
        dst.put(&as_u32(entry.phrase, "phrase index")?.to_le_bytes())?;
        for &sample in &entry.series {
            if !sample.is_finite() {
                return Err(StorageError::Unrepresentable(format!(
                    "melody {} holds a non-finite sample",
                    entry.id
                )));
            }
            dst.put(&sample.to_le_bytes())?;
        }
    }
    dst.finish_section()?;
    dst.finish_file()?;
    Ok(dst.bytes())
}

/// Deserializes and validates a segment, returning its config and entries
/// (ascending by id).
///
/// # Errors
/// [`StorageError::BadMagic`] for foreign bytes, [`StorageError::Checksum`]
/// for corrupted sections, [`StorageError::Corrupt`] for structural
/// violations (ids out of order, non-finite samples, implausible counts),
/// and [`StorageError::Io`] for truncation or read failures.
pub fn read_segment<R: Read>(
    input: &mut R,
) -> Result<(QbhConfig, Vec<SegmentEntry>), StorageError> {
    let mut src = SnapshotReader::new(input);
    let mut magic = [0u8; 8];
    src.take(&mut magic)?;
    if &magic != MAGIC_SEG {
        return Err(StorageError::BadMagic);
    }
    src.begin_section();
    let mut body = [0u8; CONFIG_BODY_LEN_V3];
    src.take(&mut body)?;
    src.verify_section("config")?;
    let config = parse_config_v3(&body)?;

    src.begin_section();
    let count = src.u64()?;
    if count > MAX_MELODIES {
        return Err(StorageError::Corrupt(format!("implausible melody count {count}")));
    }
    let mut entries = Vec::with_capacity((count as usize).min(PREALLOC_CAP));
    let mut previous: Option<u64> = None;
    for _ in 0..count {
        let id = src.u64()?;
        if previous.is_some_and(|p| p >= id) {
            return Err(StorageError::Corrupt(format!(
                "segment entry ids are not strictly ascending (id {id})"
            )));
        }
        previous = Some(id);
        let song = src.u32()? as usize;
        let phrase = src.u32()? as usize;
        let mut series = Vec::with_capacity(config.normal_length);
        for _ in 0..config.normal_length {
            let sample = src.f64()?;
            if !sample.is_finite() {
                return Err(StorageError::Corrupt(format!(
                    "melody {id} holds a non-finite sample"
                )));
            }
            series.push(sample);
        }
        entries.push(SegmentEntry { id, song, phrase, series });
    }
    src.verify_section("entries")?;
    src.verify_footer()?;
    Ok((config, entries))
}

// ---------------------------------------------------------------------------
// Manifest codec.

/// Serializes a manifest. Segment ids and tombstone ids must be strictly
/// ascending. Returns the byte count.
///
/// # Errors
/// [`StorageError::Unrepresentable`] on violations;
/// [`StorageError::Io`] on write failures.
pub fn write_manifest<W: Write>(out: &mut W, manifest: &Manifest) -> Result<u64, StorageError> {
    validate_config(&manifest.config).map_err(StorageError::Unrepresentable)?;
    if manifest.segments.len() as u64 > MAX_SEGMENTS {
        return Err(StorageError::Unrepresentable(format!(
            "segment count {} exceeds the format cap {MAX_SEGMENTS}",
            manifest.segments.len()
        )));
    }
    let mut dst = SnapshotWriter::new(out);
    dst.put(if manifest.plan.is_some() { MAGIC_MAN2 } else { MAGIC_MAN })?;
    dst.begin_section();
    write_config(&mut dst, &manifest.config)?;
    dst.put(&as_u32(manifest.config.shards, "shard count")?.to_le_bytes())?;
    dst.finish_section()?;

    dst.begin_section();
    dst.put(&(manifest.segments.len() as u64).to_le_bytes())?;
    let mut previous: Option<u64> = None;
    for segment in &manifest.segments {
        if previous.is_some_and(|p| p >= segment.id) {
            return Err(StorageError::Unrepresentable(format!(
                "manifest segment ids must be strictly ascending (id {})",
                segment.id
            )));
        }
        previous = Some(segment.id);
        dst.put(&segment.id.to_le_bytes())?;
        dst.put(&segment.count.to_le_bytes())?;
    }
    dst.finish_section()?;

    dst.begin_section();
    dst.put(&(manifest.tombstones.len() as u64).to_le_bytes())?;
    let mut previous: Option<u64> = None;
    for &id in &manifest.tombstones {
        if previous.is_some_and(|p| p >= id) {
            return Err(StorageError::Unrepresentable(format!(
                "tombstone ids must be strictly ascending (id {id})"
            )));
        }
        previous = Some(id);
        dst.put(&id.to_le_bytes())?;
    }
    dst.finish_section()?;
    if let Some(plan) = &manifest.plan {
        write_plan_section(&mut dst, plan)?;
    }
    dst.finish_file()?;
    Ok(dst.bytes())
}

/// Deserializes and validates a manifest.
///
/// # Errors
/// As [`read_segment`], with [`StorageError::Corrupt`] covering duplicate
/// or out-of-order segment ids, implausible counts, and out-of-order
/// tombstones.
pub fn read_manifest<R: Read>(input: &mut R) -> Result<Manifest, StorageError> {
    let mut src = SnapshotReader::new(input);
    let mut magic = [0u8; 8];
    src.take(&mut magic)?;
    let with_plan = match &magic {
        m if m == MAGIC_MAN => false,
        m if m == MAGIC_MAN2 => true,
        _ => return Err(StorageError::BadMagic),
    };
    src.begin_section();
    let mut body = [0u8; CONFIG_BODY_LEN_V3];
    src.take(&mut body)?;
    src.verify_section("config")?;
    let config = parse_config_v3(&body)?;

    src.begin_section();
    let segment_count = src.u64()?;
    if segment_count > MAX_SEGMENTS {
        return Err(StorageError::Corrupt(format!(
            "implausible segment count {segment_count}"
        )));
    }
    let mut segments = Vec::with_capacity((segment_count as usize).min(PREALLOC_CAP));
    let mut previous: Option<u64> = None;
    let mut total_melodies: u64 = 0;
    for _ in 0..segment_count {
        let id = src.u64()?;
        if previous.is_some_and(|p| p >= id) {
            return Err(StorageError::Corrupt(format!(
                "manifest segment ids are not strictly ascending (id {id})"
            )));
        }
        previous = Some(id);
        let count = src.u64()?;
        total_melodies = total_melodies.saturating_add(count);
        if total_melodies > MAX_MELODIES {
            return Err(StorageError::Corrupt(format!(
                "implausible melody count {total_melodies}"
            )));
        }
        segments.push(SegmentRef { id, count });
    }
    src.verify_section("segments")?;

    src.begin_section();
    let tombstone_count = src.u64()?;
    if tombstone_count > MAX_MELODIES {
        return Err(StorageError::Corrupt(format!(
            "implausible tombstone count {tombstone_count}"
        )));
    }
    let mut tombstones = Vec::with_capacity((tombstone_count as usize).min(PREALLOC_CAP));
    let mut previous: Option<u64> = None;
    for _ in 0..tombstone_count {
        let id = src.u64()?;
        if previous.is_some_and(|p| p >= id) {
            return Err(StorageError::Corrupt(format!(
                "tombstone ids are not strictly ascending (id {id})"
            )));
        }
        previous = Some(id);
        tombstones.push(id);
    }
    src.verify_section("tombstones")?;
    let plan = if with_plan { Some(read_plan_section(&mut src)?) } else { None };
    src.verify_footer()?;
    Ok(Manifest { config, segments, tombstones, plan })
}

// ---------------------------------------------------------------------------
// File-level operations (all atomic via temp-file + rename).

/// Atomically writes segment `id` into `dir`. Returns the byte count.
///
/// # Errors
/// As [`write_segment`].
pub fn save_segment(
    dir: &Path,
    id: u64,
    config: &QbhConfig,
    entries: &[SegmentEntry],
) -> Result<u64, StorageError> {
    atomic_write(&segment_path(dir, id), |out| write_segment(out, config, entries))
}

/// Loads and validates one segment file.
///
/// # Errors
/// As [`read_segment`].
pub fn load_segment(path: &Path) -> Result<(QbhConfig, Vec<SegmentEntry>), StorageError> {
    let mut input = io::BufReader::new(std::fs::File::open(path)?);
    read_segment(&mut input)
}

/// Atomically replaces the manifest in `dir`. This is the store's commit
/// point: every flush, removal, and compaction becomes visible (and
/// crash-durable) exactly when this rename lands.
///
/// # Errors
/// As [`write_manifest`].
pub fn save_manifest(dir: &Path, manifest: &Manifest) -> Result<u64, StorageError> {
    atomic_write(&manifest_path(dir), |out| write_manifest(out, manifest))
}

/// Loads and validates the manifest file itself (not the segments it
/// names — [`open_store`] does the cross-file validation).
///
/// # Errors
/// As [`read_manifest`].
pub fn load_manifest(path: &Path) -> Result<Manifest, StorageError> {
    let mut input = io::BufReader::new(std::fs::File::open(path)?);
    read_manifest(&mut input)
}

/// Creates a new empty store: the directory (if missing) and an initial
/// manifest with no segments and no tombstones.
///
/// # Errors
/// [`StorageError::Io`] with [`io::ErrorKind::AlreadyExists`] when `dir`
/// already holds a manifest (an existing store is opened, never silently
/// re-initialized), plus any validation or I/O error.
pub fn init_store(dir: &Path, config: &QbhConfig) -> Result<(), StorageError> {
    init_store_planned(dir, config, None)
}

/// [`init_store`] carrying transform-plan evidence: the initial manifest is
/// written as `HUMMAN02` with the plan section when a plan is present, so
/// every later manifest rewrite (which copies the plan verbatim) and every
/// reopen sees the same evidence the store was created under.
///
/// # Errors
/// As [`init_store`].
pub fn init_store_planned(
    dir: &Path,
    config: &QbhConfig,
    plan: Option<TransformPlan>,
) -> Result<(), StorageError> {
    validate_config(config).map_err(StorageError::Unrepresentable)?;
    std::fs::create_dir_all(dir)?;
    let manifest_file = manifest_path(dir);
    if manifest_file.exists() {
        return Err(StorageError::Io(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!("store at {} already has a manifest", dir.display()),
        )));
    }
    let manifest = Manifest { config: *config, segments: Vec::new(), tombstones: Vec::new(), plan };
    save_manifest(dir, &manifest)?;
    Ok(())
}

/// Everything [`open_store`] read and cross-validated: the manifest plus
/// each live segment's entries, in manifest (ascending id) order.
#[derive(Debug)]
pub struct LoadedStore {
    /// The validated manifest.
    pub manifest: Manifest,
    /// Per-segment entries, parallel to `manifest.segments`. Tombstoned
    /// entries are *included* (the caller skips them when building
    /// engines); their ids are in `manifest.tombstones`.
    pub segments: Vec<Vec<SegmentEntry>>,
}

/// Opens a store directory: loads the manifest, loads every segment it
/// names, and cross-validates the whole set. Orphan files in the directory
/// (crash leftovers from interrupted flushes or compactions) are ignored.
///
/// # Errors
/// [`StorageError::Corrupt`] for: a manifest-named segment file that is
/// missing; a segment whose config or entry count disagrees with the
/// manifest; melody ids overlapping across segments; tombstones that
/// reference no stored melody. Plus every per-file error of
/// [`load_manifest`] / [`load_segment`].
pub fn open_store(dir: &Path) -> Result<LoadedStore, StorageError> {
    let manifest = load_manifest(&manifest_path(dir))?;
    let mut segments = Vec::with_capacity(manifest.segments.len());
    let mut seen_ids: BTreeSet<u64> = BTreeSet::new();
    for segment_ref in &manifest.segments {
        let path = segment_path(dir, segment_ref.id);
        let (config, entries) = match load_segment(&path) {
            Ok(loaded) => loaded,
            Err(StorageError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
                return Err(StorageError::Corrupt(format!(
                    "manifest names segment {} but {} is missing",
                    segment_ref.id,
                    path.display()
                )));
            }
            Err(other) => return Err(other),
        };
        if config != manifest.config {
            return Err(StorageError::Corrupt(format!(
                "segment {} config disagrees with the manifest",
                segment_ref.id
            )));
        }
        if entries.len() as u64 != segment_ref.count {
            return Err(StorageError::Corrupt(format!(
                "segment {} holds {} melodies, manifest says {}",
                segment_ref.id,
                entries.len(),
                segment_ref.count
            )));
        }
        for entry in &entries {
            if !seen_ids.insert(entry.id) {
                return Err(StorageError::Corrupt(format!(
                    "melody id {} appears in more than one segment",
                    entry.id
                )));
            }
        }
        segments.push(entries);
    }
    for &tombstone in &manifest.tombstones {
        if !seen_ids.contains(&tombstone) {
            return Err(StorageError::Corrupt(format!(
                "dangling tombstone: id {tombstone} is stored in no segment"
            )));
        }
    }
    Ok(LoadedStore { manifest, segments })
}

// ---------------------------------------------------------------------------
// Removal log (durable removals for corpora persisted as one snapshot).

/// Serializes a removal log: a checksummed, strictly-ascending set of
/// removed source ids. [`crate::songsearch::SongSearch`] rewrites it
/// atomically on every removal so a crash-and-reload never resurrects a
/// removed song.
///
/// # Errors
/// [`StorageError::Unrepresentable`] when ids are not strictly ascending;
/// [`StorageError::Io`] on write failures.
pub fn write_removal_log<W: Write>(out: &mut W, ids: &[u64]) -> Result<u64, StorageError> {
    if ids.len() as u64 > MAX_MELODIES {
        return Err(StorageError::Unrepresentable(format!(
            "removal count {} exceeds the format cap {MAX_MELODIES}",
            ids.len()
        )));
    }
    let mut dst = SnapshotWriter::new(out);
    dst.put(MAGIC_RML)?;
    dst.begin_section();
    dst.put(&(ids.len() as u64).to_le_bytes())?;
    let mut previous: Option<u64> = None;
    for &id in ids {
        if previous.is_some_and(|p| p >= id) {
            return Err(StorageError::Unrepresentable(format!(
                "removal-log ids must be strictly ascending (id {id})"
            )));
        }
        previous = Some(id);
        dst.put(&id.to_le_bytes())?;
    }
    dst.finish_section()?;
    dst.finish_file()?;
    Ok(dst.bytes())
}

/// Deserializes and validates a removal log.
///
/// # Errors
/// As the other readers here: typed, never a panic.
pub fn read_removal_log<R: Read>(input: &mut R) -> Result<Vec<u64>, StorageError> {
    let mut src = SnapshotReader::new(input);
    let mut magic = [0u8; 8];
    src.take(&mut magic)?;
    if &magic != MAGIC_RML {
        return Err(StorageError::BadMagic);
    }
    src.begin_section();
    let count = src.u64()?;
    if count > MAX_MELODIES {
        return Err(StorageError::Corrupt(format!("implausible removal count {count}")));
    }
    let mut ids = Vec::with_capacity((count as usize).min(PREALLOC_CAP));
    let mut previous: Option<u64> = None;
    for _ in 0..count {
        let id = src.u64()?;
        if previous.is_some_and(|p| p >= id) {
            return Err(StorageError::Corrupt(format!(
                "removal-log ids are not strictly ascending (id {id})"
            )));
        }
        previous = Some(id);
        ids.push(id);
    }
    src.verify_section("removals")?;
    src.verify_footer()?;
    Ok(ids)
}

/// Atomically rewrites the removal log at `path`.
///
/// # Errors
/// As [`write_removal_log`].
pub fn save_removal_log(path: &Path, ids: &BTreeSet<u64>) -> Result<u64, StorageError> {
    let sorted: Vec<u64> = ids.iter().copied().collect();
    atomic_write(path, |out| write_removal_log(out, &sorted))
}

/// Loads a removal log; a missing file is an empty log (nothing was ever
/// removed), any other failure is a typed error.
///
/// # Errors
/// As [`read_removal_log`].
pub fn load_removal_log(path: &Path) -> Result<BTreeSet<u64>, StorageError> {
    let file = match std::fs::File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeSet::new()),
        Err(e) => return Err(StorageError::Io(e)),
    };
    let mut input = io::BufReader::new(file);
    Ok(read_removal_log(&mut input)?.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::QbhConfig;

    fn sample_entries(config: &QbhConfig, count: usize) -> Vec<SegmentEntry> {
        (0..count)
            .map(|i| SegmentEntry {
                id: (i * 3 + 1) as u64,
                song: i / 4,
                phrase: i % 4,
                series: (0..config.normal_length)
                    .map(|t| ((t + i) as f64 * 0.31).sin())
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn segment_roundtrip_is_exact() {
        let config = QbhConfig { shards: 3, ..QbhConfig::default() };
        let entries = sample_entries(&config, 7);
        let mut image = Vec::new();
        write_segment(&mut image, &config, &entries).unwrap();
        let (back_config, back) = read_segment(&mut image.as_slice()).unwrap();
        assert_eq!(back_config, config);
        assert_eq!(back, entries);
    }

    #[test]
    fn manifest_roundtrip_is_exact() {
        let manifest = Manifest {
            config: QbhConfig::default(),
            segments: vec![SegmentRef { id: 1, count: 10 }, SegmentRef { id: 4, count: 2 }],
            tombstones: vec![3, 17, 29],
            plan: None,
        };
        let mut image = Vec::new();
        write_manifest(&mut image, &manifest).unwrap();
        assert_eq!(read_manifest(&mut image.as_slice()).unwrap(), manifest);
    }

    #[test]
    fn removal_log_roundtrip_and_missing_file() {
        let ids: BTreeSet<u64> = [9u64, 2, 40].into_iter().collect();
        let sorted: Vec<u64> = ids.iter().copied().collect();
        let mut image = Vec::new();
        write_removal_log(&mut image, &sorted).unwrap();
        assert_eq!(read_removal_log(&mut image.as_slice()).unwrap(), sorted);
        let missing = std::env::temp_dir().join("hum-store-removal-log-missing");
        let _ = std::fs::remove_file(&missing);
        assert!(load_removal_log(&missing).unwrap().is_empty());
    }

    #[test]
    fn unsorted_ids_are_rejected_on_write_and_read() {
        let config = QbhConfig::default();
        let mut entries = sample_entries(&config, 3);
        entries.swap(0, 2);
        let mut image = Vec::new();
        let err = write_segment(&mut image, &config, &entries).unwrap_err();
        assert!(matches!(err, StorageError::Unrepresentable(_)), "{err:?}");
        let err = write_removal_log(&mut Vec::new(), &[5, 5]).unwrap_err();
        assert!(matches!(err, StorageError::Unrepresentable(_)), "{err:?}");
    }
}
