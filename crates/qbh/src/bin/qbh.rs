//! `qbh` — a query-by-humming system over a directory of MIDI files.
//!
//! ```text
//! qbh generate <dir> [--songs N] [--seed S]   write a melody corpus as .mid files
//! qbh info     <dir>                          corpus statistics
//! qbh index    <dir> <out.humidx>             persist the corpus as one binary file
//!              [--store] [--memtable N] [--compact-at N]
//!                                             or, with --store, ingest it
//!                                             incrementally into a segmented
//!                                             store directory at <out>
//! qbh hum      <dir> <name.mid> <out.wav>     synthesize a hum of one melody
//!              [--singer good|poor] [--seed S]
//!              [--stream ADDR] [--top K] [--chunk-frames N]
//!                                             and/or stream it to a running
//!                                             server, printing the top-k as
//!                                             it refines with each chunk
//! qbh query    <dir|file.humidx> <hum.wav> [--top K]
//!                                             find a hummed melody in the corpus
//! qbh serve    <file.humidx|store-dir> [--addr A] [--workers N]
//!              [--queue-depth D] [--max-sessions N]
//!              [--default-deadline-ms MS] [--shards N]
//!              [--store] [--memtable N] [--compact-at N]
//!              [--maintenance-ms MS]
//!              [--allow-remote-shutdown]      serve the index over TCP;
//!                                             with --store the path is a
//!                                             segmented store directory and
//!                                             inserts are durable
//! ```
//!
//! Results go to stdout; progress and diagnostics go to stderr, so scripted
//! consumers can pipe stdout without filtering.
//!
//! Everything on disk goes through this workspace's own codecs: melodies are
//! Standard MIDI Files written/parsed by `hum-midi`, hums are PCM16 WAV
//! written/parsed by `hum-audio`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hum_core::obs::{Metric, MetricsSink};
use hum_core::plan::{PlannerOptions, TransformPlan};
use hum_music::{HummingSimulator, Melody, SingerProfile, Songbook, SongbookConfig};
use hum_qbh::corpus::{melody_from_smf, melody_to_smf};
use hum_server::{Server, ServerConfig};
use hum_qbh::storage::StorageError;
use hum_qbh::system::{QbhConfig, QbhSystem, StoreOptions, TransformChoice, TransformKind};

/// CLI failure modes, each with its own exit code so scripts can tell a
/// misused invocation (2) from a corrupt or unwritable snapshot (3) or a
/// serving failure such as an unbindable address (4).
enum CliError {
    /// Bad arguments or an unreadable corpus directory.
    Usage(String),
    /// A typed storage failure: corrupt snapshot, checksum mismatch,
    /// interrupted save, unrepresentable database.
    Storage(StorageError),
    /// A serving failure: the listen address cannot be bound.
    Server(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Storage(_) => 3,
            CliError::Server(_) => 4,
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Usage(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::Usage(message.to_string())
    }
}

impl From<StorageError> for CliError {
    fn from(e: StorageError) -> Self {
        CliError::Storage(e)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(message) => write!(f, "{message}"),
            CliError::Storage(e) => write!(f, "{e}"),
            CliError::Server(message) => write!(f, "{message}"),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("index") => cmd_index(&args[1..]),
        Some("hum") => cmd_hum(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help") | Some("-h") | None => {
            // Requested help is a result: print it to stdout.
            println!("{}", usage_text());
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!("unknown command: {other}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {error}");
            if matches!(error, CliError::Usage(_)) {
                usage();
            }
            ExitCode::from(error.exit_code())
        }
    }
}

fn usage_text() -> &'static str {
    "usage:\n  qbh generate <dir> [--songs N] [--seed S]\n  qbh info <dir>\n  \
     qbh index <dir> <out.humidx> [--store] [--memtable N] [--compact-at N]\n          \
[--transform newpaa|keoghpaa|dft|dwt|svd|auto]\n  \
     qbh hum <dir> <name.mid> <out.wav> [--singer good|poor] [--seed S]\n          \
[--stream ADDR] [--top K] [--chunk-frames N]\n  \
     qbh query <dir|file.humidx> <hum.wav> [--top K]\n  \
     qbh serve <file.humidx|store-dir> [--addr A] [--workers N] [--queue-depth D]\n          \
[--default-deadline-ms MS] [--shards N] [--max-sessions N]\n          \
[--store] [--memtable N] [--compact-at N] [--maintenance-ms MS]\n          \
[--allow-remote-shutdown]"
}

fn usage() {
    eprintln!("{}", usage_text());
}

fn string_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.clone()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|e| format!("{flag}: {e}")),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let dir = PathBuf::from(args.first().ok_or("generate needs a directory")?);
    let songs = flag_value(args, "--songs")?.unwrap_or(50) as usize;
    let seed = flag_value(args, "--seed")?.unwrap_or(2003);
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;

    let book = Songbook::generate(&SongbookConfig { songs, seed, ..SongbookConfig::default() });
    let mut written = 0usize;
    for (song_idx, phrase_idx, melody) in book.phrases() {
        let smf = melody_to_smf(melody, 480);
        let name = format!("song{song_idx:03}_phrase{phrase_idx:02}.mid");
        std::fs::write(dir.join(&name), hum_midi::write_smf(&smf))
            .map_err(|e| format!("cannot write {name}: {e}"))?;
        written += 1;
    }
    println!("Wrote {written} melodies ({songs} songs) to {}.", dir.display());
    Ok(())
}

/// Loads every `.mid` in the directory, sorted by file name for stable ids.
fn load_corpus(dir: &Path) -> Result<BTreeMap<String, Melody>, String> {
    let mut corpus = BTreeMap::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("mid") {
            continue;
        }
        let bytes =
            std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let smf = hum_midi::parse_smf(&bytes)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let melody = melody_from_smf(&smf, 0);
        if melody.is_empty() {
            continue; // no melody on channel 0; skip quietly
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or("non-UTF8 file name")?
            .to_string();
        corpus.insert(name, melody);
    }
    if corpus.is_empty() {
        return Err(format!("no .mid melodies found in {}", dir.display()));
    }
    Ok(corpus)
}

fn build_system(corpus: &BTreeMap<String, Melody>) -> (QbhSystem, Vec<String>) {
    // Ids follow the sorted file-name order; keep the names for reporting.
    let names: Vec<String> = corpus.keys().cloned().collect();
    let db = hum_qbh::corpus::MelodyDatabase::from_melodies(
        corpus.values().cloned().collect::<Vec<_>>(),
    );
    (QbhSystem::build(&db, &QbhConfig::default()), names)
}

fn cmd_info(args: &[String]) -> Result<(), CliError> {
    let dir = PathBuf::from(args.first().ok_or("info needs a directory")?);
    let corpus = load_corpus(&dir)?;
    let notes: usize = corpus.values().map(Melody::len).sum();
    let beats: f64 = corpus.values().map(Melody::total_beats).sum();
    println!("{}: {} melodies, {} notes, {:.0} beats total.", dir.display(), corpus.len(), notes, beats);
    let (lo, hi) = corpus
        .values()
        .filter_map(Melody::pitch_range)
        .fold((u8::MAX, u8::MIN), |(lo, hi), (l, h)| (lo.min(l), hi.max(h)));
    println!("Pitch range: MIDI {lo}..{hi}. Example files:");
    for name in corpus.keys().take(3) {
        println!("  {name}");
    }
    Ok(())
}

fn cmd_hum(args: &[String]) -> Result<(), CliError> {
    let dir = PathBuf::from(args.first().ok_or("hum needs a directory")?);
    let name = args.get(1).ok_or("hum needs a melody file name")?;
    let out = PathBuf::from(args.get(2).ok_or("hum needs an output .wav path")?);
    let seed = flag_value(args, "--seed")?.unwrap_or(42);
    let profile = match args.iter().position(|a| a == "--singer") {
        None => SingerProfile::good(),
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("good") => SingerProfile::good(),
            Some("poor") => SingerProfile::poor(),
            other => return Err(format!("--singer must be good|poor, got {other:?}").into()),
        },
    };

    let corpus = load_corpus(&dir)?;
    let melody = corpus.get(name).ok_or_else(|| format!("no melody named {name}"))?;
    let mut singer = HummingSimulator::new(profile, seed);
    let sung = singer.sing_notes(melody);
    let notes: Vec<hum_audio::HumNote> =
        sung.iter().map(|n| hum_audio::HumNote { midi: n.midi, seconds: n.seconds }).collect();
    let audio =
        hum_audio::HumSynthesizer::new(hum_audio::SynthConfig { seed, ..Default::default() })
            .render(&notes);
    std::fs::write(&out, hum_audio::write_wav_mono(&audio, 8_000))
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "Hummed {name} ({} notes, {:.1} s) to {}.",
        melody.len(),
        audio.len() as f64 / 8_000.0,
        out.display()
    );

    if let Some(addr) = string_flag(args, "--stream")? {
        let top = flag_value(args, "--top")?.unwrap_or(5) as usize;
        let chunk = flag_value(args, "--chunk-frames")?.unwrap_or(16).max(1) as usize;
        stream_hum(&audio, 8_000, &addr, top, chunk)?;
    }
    Ok(())
}

/// Query-as-you-hum against a running `qbh serve`: pitch-track the hum,
/// open a streaming session, and refine after every appended chunk,
/// printing the top-k as it sharpens.
fn stream_hum(
    audio: &[f64],
    sample_rate: u32,
    addr: &str,
    top: usize,
    chunk: usize,
) -> Result<(), CliError> {
    let tracker = hum_audio::PitchTrackerConfig {
        sample_rate,
        ..hum_audio::PitchTrackerConfig::default()
    };
    let frames = hum_audio::track_pitch(audio, &tracker).voiced_series();
    if frames.is_empty() {
        return Err(CliError::Server("no voiced frames to stream".to_string()));
    }

    let connect = |e| CliError::Server(format!("cannot stream to {addr}: {e}"));
    let mut client = hum_server::Client::connect(addr).map_err(connect)?;
    let hello = client
        .hello(hum_server::PROTOCOL_VERSION)
        .map_err(|e| CliError::Server(format!("handshake with {addr} failed: {e}")))?;
    if hello.version < hum_server::PROTOCOL_VERSION {
        return Err(CliError::Server(format!(
            "{addr} speaks protocol v{} (< v{}); it has no streaming sessions",
            hello.version,
            hum_server::PROTOCOL_VERSION
        )));
    }

    let wire = |e| CliError::Server(format!("streaming to {addr} failed: {e}"));
    let session = client
        .open_session(
            hum_server::ServiceQuery::Knn { k: top },
            &hum_server::QueryOptions::default(),
        )
        .map_err(wire)?;
    eprintln!(
        "Streaming {} voiced frames to {addr} (session {session}, chunks of {chunk})...",
        frames.len()
    );
    for batch in frames.chunks(chunk) {
        let total = client.append_frames(session, batch).map_err(wire)?;
        let refined = client.refine(session, None).map_err(wire)?;
        let line: Vec<String> = refined
            .reply
            .matches
            .iter()
            .map(|m| format!("#{} ({:.3})", m.id, m.distance))
            .collect();
        println!("[{total:>4} frames] top-{top}: {}", line.join("  "));
    }
    client.close_session(session).map_err(wire)?;
    Ok(())
}

/// Parses `--transform`. `auto` defers the choice to the build-time planner,
/// which measures lower-bound tightness over a corpus sample; the named
/// families pin it, matching `QbhConfig` defaults when the flag is absent.
fn transform_flag(args: &[String]) -> Result<TransformChoice, CliError> {
    let value = string_flag(args, "--transform")?;
    match value.as_deref() {
        None => Ok(QbhConfig::default().transform),
        Some("newpaa") => Ok(TransformKind::NewPaa.into()),
        Some("keoghpaa") => Ok(TransformKind::KeoghPaa.into()),
        Some("dft") => Ok(TransformKind::Dft.into()),
        Some("dwt") => Ok(TransformKind::Dwt.into()),
        Some("svd") => Ok(TransformKind::Svd.into()),
        Some("auto") => Ok(TransformChoice::Auto(PlannerOptions::default())),
        Some(other) => {
            Err(format!("--transform must be newpaa|keoghpaa|dft|dwt|svd|auto, got {other}").into())
        }
    }
}

/// Prints the planner's decision and its full evidence table to stderr:
/// the chosen family plus every measured candidate, then the `planner.*`
/// counters so scripted runs can scrape the same numbers the registry holds.
fn report_plan(plan: &TransformPlan, metrics: &MetricsSink) {
    eprintln!("Planned transform: {}", plan.summary());
    for candidate in &plan.candidates {
        let marker = if candidate.family == plan.family && candidate.dims == plan.dims {
            "chosen ->"
        } else {
            "         "
        };
        eprintln!(
            "  {marker} {:<9} d={:<3} tightness {:.4}  est-candidates {:.4}  cost {:.4}  score {:.4}",
            candidate.family.name(),
            candidate.dims,
            candidate.mean_tightness,
            candidate.est_candidate_ratio,
            candidate.projection_cost,
            candidate.score,
        );
    }
    if let Some(registry) = metrics.registry() {
        let snapshot = registry.snapshot();
        eprintln!(
            "  planner.runs {}  planner.sampled_series {}  planner.sampled_pairs {}  \
             planner.chosen_family_tag {}  planner.chosen_dims {}  planner.tightness_ppm {}",
            snapshot.counter(Metric::PlannerRuns),
            snapshot.counter(Metric::PlannerSampledSeries),
            snapshot.counter(Metric::PlannerSampledPairs),
            snapshot.counter(Metric::PlannerChosenFamilyTag),
            snapshot.counter(Metric::PlannerChosenDims),
            snapshot.counter(Metric::PlannerTightnessPpm),
        );
    }
}

/// Parses the shared store tuning flags (`--memtable`, `--compact-at`).
fn store_options(args: &[String]) -> Result<StoreOptions, CliError> {
    let defaults = StoreOptions::default();
    Ok(StoreOptions {
        memtable_capacity: flag_value(args, "--memtable")?
            .map(|n| n.max(1) as usize)
            .unwrap_or(defaults.memtable_capacity),
        compact_at: flag_value(args, "--compact-at")?
            .map(|n| n.max(2) as usize)
            .unwrap_or(defaults.compact_at),
    })
}

/// Renders every corpus melody to the raw time series the planner measures.
/// The planner draws its own seeded sub-sample from this slice, so the
/// decision is a function of (corpus, planner seed), not CLI iteration order.
fn plan_sample(db: &hum_qbh::corpus::MelodyDatabase, config: &QbhConfig) -> Vec<Vec<f64>> {
    db.entries()
        .iter()
        .map(|entry| entry.melody().to_time_series(config.samples_per_beat))
        .collect()
}

fn cmd_index(args: &[String]) -> Result<(), CliError> {
    let dir = PathBuf::from(args.first().ok_or("index needs a directory")?);
    let out = PathBuf::from(args.get(1).ok_or("index needs an output path")?);
    let corpus = load_corpus(&dir)?;
    let db = hum_qbh::corpus::MelodyDatabase::from_melodies(
        corpus.values().cloned().collect::<Vec<_>>(),
    );
    let config = QbhConfig { transform: transform_flag(args)?, ..QbhConfig::default() };
    if args.iter().any(|a| a == "--store") {
        return index_into_store(&db, &out, store_options(args)?, &config);
    }
    // Resolve `--transform auto` once, here at build time: the snapshot then
    // carries the pinned choice plus the plan evidence, so loads never re-plan.
    let metrics = MetricsSink::enabled();
    let sample = plan_sample(&db, &config);
    let (config, plan) = QbhSystem::resolve_transform(&config, &sample, &metrics)?;
    if let Some(plan) = &plan {
        report_plan(plan, &metrics);
    }
    // Atomic, checksummed save: either the complete snapshot lands at `out`
    // or a typed error is reported and any previous file stays intact.
    let bytes = hum_qbh::storage::save_planned(&out, &db, &config, plan.as_ref(), &metrics)?;
    println!("Persisted {} melodies to {} ({bytes} bytes).", db.len(), out.display());
    println!("Note: melody names are not stored; query hits report database ids.");
    Ok(())
}

/// Incremental ingest: every melody goes through the memtable, flushing a
/// bounded segment whenever it fills, so durable cost per insert stays
/// proportional to the memtable — not to the corpus.
fn index_into_store(
    db: &hum_qbh::corpus::MelodyDatabase,
    out: &Path,
    options: StoreOptions,
    config: &QbhConfig,
) -> Result<(), CliError> {
    std::fs::create_dir_all(out)
        .map_err(|e| CliError::Usage(format!("cannot create {}: {e}", out.display())))?;
    let metrics = MetricsSink::enabled();
    let sample = plan_sample(db, config);
    let mut system =
        QbhSystem::try_create_store_planned(out, config, options, &sample, &metrics)?;
    if let Some(plan) = system.plan() {
        report_plan(plan, &metrics);
    }
    let config = *system.config();
    for entry in db.entries() {
        let series = entry.melody().to_time_series(config.samples_per_beat);
        system
            .try_insert_melody(entry.id(), entry.song(), entry.phrase(), &series)
            .map_err(|e| CliError::Usage(format!("melody #{}: {e}", entry.id())))?;
        system.maintain()?;
    }
    // Final flush so the tail of the corpus is durable too.
    system.flush()?;
    let stats = system.store_stats().unwrap_or_default();
    println!(
        "Ingested {} melodies into {} ({} segments, {} flushes, {} compactions, {} bytes).",
        system.len(),
        out.display(),
        stats.segments,
        stats.flushes,
        stats.compactions,
        stats.bytes_written
    );
    println!("Note: melody names are not stored; query hits report database ids.");
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let source = PathBuf::from(args.first().ok_or("query needs a directory or .humidx file")?);
    let wav_path = PathBuf::from(args.get(1).ok_or("query needs a .wav file")?);
    let top = flag_value(args, "--top")?.unwrap_or(5) as usize;

    let (system, names) = if source.extension().and_then(|e| e.to_str()) == Some("humidx") {
        // The fallible load validates checksums and the configuration, so a
        // corrupt or truncated snapshot is a typed error (exit code 3)
        // rather than a panic somewhere inside the build.
        let system = QbhSystem::try_load(&source)?;
        // Progress goes to stderr: stdout carries only the match list, so
        // scripted consumers never see it polluted — even on a run that
        // fails after this point.
        eprintln!("Loaded {} melodies from {}...", system.len(), source.display());
        let names = (0..system.len()).map(|i| format!("melody #{i}")).collect();
        (system, names)
    } else {
        let corpus = load_corpus(&source)?;
        eprintln!("Indexing {} melodies from {}...", corpus.len(), source.display());
        build_system(&corpus)
    };

    let bytes = std::fs::read(&wav_path)
        .map_err(|e| format!("cannot read {}: {e}", wav_path.display()))?;
    let (samples, rate) =
        hum_audio::read_wav_mono(&bytes).map_err(|e| format!("{}: {e}", wav_path.display()))?;
    eprintln!("Query: {:.1} s of audio at {rate} Hz.", samples.len() as f64 / rate as f64);

    let results = system.query_audio(&samples, rate, top);
    if results.matches.is_empty() {
        eprintln!("No voiced frames found — is the recording silent?");
        return Ok(());
    }
    println!("\nTop matches:");
    for (rank, m) in results.matches.iter().enumerate() {
        println!(
            "  {}. {}  (DTW distance {:.3})",
            rank + 1,
            names[m.id as usize],
            m.distance
        );
    }
    eprintln!(
        "\n({} candidates from the index, {} exact DTW computations, {} page accesses.)",
        results.stats.index.candidates,
        results.stats.exact_computations,
        results.stats.index.node_accesses
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let path =
        PathBuf::from(args.first().ok_or("serve needs a .humidx snapshot or store directory")?);
    let addr = string_flag(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7700".to_string());
    let workers = flag_value(args, "--workers")?.unwrap_or(4).max(1) as usize;
    let queue_depth = flag_value(args, "--queue-depth")?.unwrap_or(64).max(1) as usize;
    let default_deadline =
        flag_value(args, "--default-deadline-ms")?.map(std::time::Duration::from_millis);
    let shards = flag_value(args, "--shards")?.map(|n| n.max(1) as usize);
    let allow_remote_shutdown = args.iter().any(|a| a == "--allow-remote-shutdown");
    let max_sessions = flag_value(args, "--max-sessions")?
        .map(|n| n.max(1) as usize)
        .unwrap_or(ServerConfig::default().max_sessions);
    let store_backed = args.iter().any(|a| a == "--store");
    let maintenance_interval =
        flag_value(args, "--maintenance-ms")?.map(std::time::Duration::from_millis);

    // One shared registry records both server counters (connections, queue
    // high water, rejections) and engine counters (queries, DP cells).
    let metrics = MetricsSink::enabled();
    let system = if store_backed {
        if shards.is_some() {
            // The manifest pins the shard count: every segment engine was
            // sharded with it, and re-sharding would have to re-index every
            // segment. Refuse rather than silently ignore.
            return Err("--shards cannot be combined with --store".into());
        }
        let system = QbhSystem::try_open_store_with(&path, store_options(args)?, &metrics)?;
        let stats = system.store_stats().unwrap_or_default();
        eprintln!(
            "Opened store {} ({} melodies, {} segments, {} tombstones, {} shard{}).",
            path.display(),
            system.len(),
            stats.segments,
            stats.tombstones,
            system.shard_count(),
            if system.shard_count() == 1 { "" } else { "s" }
        );
        if let Some(family) = stats.plan_family {
            eprintln!(
                "Planned transform (persisted): {} d={} mean-tightness {:.4}.",
                family.name(),
                stats.plan_dims,
                stats.plan_tightness_ppm as f64 / 1e6
            );
        }
        system
    } else {
        if maintenance_interval.is_some() {
            return Err("--maintenance-ms needs --store (snapshots have no background work)".into());
        }
        // `--shards` overrides the persisted shard count: the snapshot format
        // pins shard assignment, but serving topology is an operator decision.
        let system = QbhSystem::try_load_with_shards(&path, &metrics, shards)?;
        eprintln!(
            "Loaded {} melodies from {} ({} shard{}).",
            system.len(),
            path.display(),
            system.shard_count(),
            if system.shard_count() == 1 { "" } else { "s" }
        );
        system
    };

    let config = ServerConfig {
        workers,
        queue_depth,
        default_deadline,
        allow_remote_shutdown,
        max_sessions,
        maintenance_interval,
        metrics: metrics.clone(),
        ..ServerConfig::default()
    };
    let server = Server::start(system, addr.as_str(), config)
        .map_err(|e| CliError::Server(format!("cannot listen on {addr}: {e}")))?;
    // The one stdout line, so scripts can read the bound address (the
    // port is ephemeral when --addr ends in :0).
    println!("listening on {}", server.local_addr());
    eprintln!(
        "{workers} workers, queue depth {queue_depth}, default deadline {}",
        match default_deadline {
            Some(d) => format!("{} ms", d.as_millis()),
            None => "none".to_string(),
        }
    );

    server.wait_shutdown_requested();
    eprintln!("shutdown requested; draining in-flight requests...");
    server.shutdown();
    if let Some(registry) = metrics.registry() {
        let snapshot = registry.snapshot();
        eprintln!(
            "served {} requests over {} connections ({} rejected overloaded, \
             {} deadline-exceeded, {} protocol errors)",
            snapshot.counter(Metric::ServerRequestsAccepted),
            snapshot.counter(Metric::ServerConnections),
            snapshot.counter(Metric::ServerRequestsRejectedOverload),
            snapshot.counter(Metric::ServerDeadlineExceeded),
            snapshot.counter(Metric::ServerProtocolErrors),
        );
    }
    Ok(())
}
