//! Serving adapter: [`QbhSystem`] as a [`hum_server::QbhService`].
//!
//! This is the other half of the server's dependency inversion: `hum-server`
//! defines the small [`QbhService`] surface it can serve, and this module
//! implements it for the assembled system — so `qbh serve` is just
//! `Server::start(system, addr, config)`.
//!
//! The adapter adds nothing of its own: queries go through
//! [`QbhSystem::try_query_request_with`] (the same path in-process callers
//! use, with the worker's reusable scratch), so served results are
//! bit-identical to local ones; mutations go through
//! [`QbhSystem::try_insert_melody`] / [`QbhSystem::try_remove`].

use hum_core::engine::{
    EngineError, QueryBudget, QueryRequest, QueryScratch,
};
use hum_server::{
    MaintenanceReport, QbhService, ServiceError, ServiceMatch, ServiceOutcome, ServiceQuery,
};

use crate::storage::StorageError;
use crate::system::QbhSystem;

fn storage_error(e: StorageError) -> ServiceError {
    ServiceError::Storage(e.to_string())
}

impl QbhService for QbhSystem {
    fn query(
        &self,
        query: &ServiceQuery,
        pitch_series: &[f64],
        band: Option<usize>,
        budget: QueryBudget,
        trace: bool,
        scratch: &mut QueryScratch,
    ) -> Result<ServiceOutcome, EngineError> {
        let request = match *query {
            ServiceQuery::Knn { k } => QueryRequest::knn(k),
            ServiceQuery::Range { radius } => QueryRequest::range(radius),
        };
        let request = request
            .with_band(band.unwrap_or_else(|| self.band()))
            .with_trace(trace)
            .with_budget(budget);
        let (results, trace) = self.try_query_request_with(pitch_series, request, scratch)?;
        let matches = results
            .matches
            .into_iter()
            .map(|m| ServiceMatch {
                id: m.id,
                song: m.song,
                phrase: m.phrase,
                distance: m.distance,
            })
            .collect();
        Ok(ServiceOutcome { matches, stats: results.stats, trace })
    }

    fn insert(
        &mut self,
        id: u64,
        song: usize,
        phrase: usize,
        pitch_series: &[f64],
    ) -> Result<(), ServiceError> {
        self.try_insert_melody(id, song, phrase, pitch_series)?;
        // Store-backed systems flush inline once the memtable fills, so
        // ingest durability never depends on the maintenance timer alone.
        // The melody is indexed either way; only its durability lags.
        if self.needs_flush() {
            self.flush().map_err(storage_error)?;
        }
        Ok(())
    }

    fn remove(&mut self, id: u64) -> Result<bool, ServiceError> {
        self.try_remove(id).map_err(storage_error)
    }

    fn maintain(&mut self) -> Result<MaintenanceReport, ServiceError> {
        let done = QbhSystem::maintain(self).map_err(storage_error)?;
        Ok(MaintenanceReport { flushed: done.flushed, compacted: done.compacted })
    }

    fn len(&self) -> usize {
        QbhSystem::len(self)
    }
}
