//! Audio substrate: the microphone end of the query-by-humming pipeline.
//!
//! The paper's front end (§3.1) records the user's hum with a mono PC
//! microphone, segments it into 10 ms frames, and resolves each frame to a
//! pitch with a pitch-tracking algorithm [Tolonen & Karjalainen]. Real
//! hummers are not available to an offline reproduction, so this crate
//! provides both halves of a faithful substitute:
//!
//! * [`synth`] — a hum synthesizer that renders a melody into a waveform
//!   with the acoustic quirks of a human voice (harmonics, vibrato, pitch
//!   glides between notes, breath noise, amplitude envelopes);
//! * [`pitch`] — an autocorrelation pitch tracker over 10 ms frames with
//!   voicing detection and median smoothing, producing the pitch time
//!   series the query engine consumes;
//! * [`pitch_hps`] — an independent spectral tracker (Harmonic Product
//!   Spectrum over the workspace FFT), for cross-checking and
//!   harmonic-rich voices;
//! * [`wav`] — mono PCM16 WAV read/write so hums can be persisted and
//!   inspected.
//!
//! The synthesizer and tracker together exercise the same error modes the
//! paper leans on: frame-level pitch jitter, unreliable silence, and smooth
//! note transitions that defeat naive note segmentation.

pub mod pitch;
pub mod pitch_hps;
pub mod synth;
pub mod wav;

pub use pitch::{track_pitch, PitchTrack, PitchTrackerConfig};
pub use pitch_hps::track_pitch_hps;
pub use synth::{HumNote, HumSynthesizer, SynthConfig};
pub use wav::{read_wav_mono, write_wav_mono, WavError};

/// Converts a MIDI note number (possibly fractional) to frequency in Hz
/// (A4 = 69 = 440 Hz).
pub fn midi_to_hz(midi: f64) -> f64 {
    440.0 * ((midi - 69.0) / 12.0).exp2()
}

/// Converts a frequency in Hz to a (fractional) MIDI note number.
///
/// # Panics
/// Panics if `hz` is not positive.
pub fn hz_to_midi(hz: f64) -> f64 {
    assert!(hz > 0.0, "frequency must be positive");
    69.0 + 12.0 * (hz / 440.0).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midi_hz_reference_points() {
        assert!((midi_to_hz(69.0) - 440.0).abs() < 1e-9);
        assert!((midi_to_hz(57.0) - 220.0).abs() < 1e-9);
        assert!((midi_to_hz(60.0) - 261.6256).abs() < 1e-3);
    }

    #[test]
    fn midi_hz_roundtrip() {
        for m in 40..100 {
            let m = m as f64 + 0.37;
            assert!((hz_to_midi(midi_to_hz(m)) - m).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = hz_to_midi(0.0);
    }
}
