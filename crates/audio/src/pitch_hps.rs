//! Spectral pitch tracking via the Harmonic Product Spectrum.
//!
//! An alternative front end to the time-domain autocorrelation tracker in
//! [`crate::pitch`]: each frame is Hann-windowed, zero-padded, transformed
//! with the workspace FFT, and the magnitude spectrum is multiplied with its
//! own 2×/3×/4× downsampled copies — harmonics of the true fundamental pile
//! up at the fundamental's bin, suppressing both octave-up errors (energy at
//! 2f0) and noise peaks. Useful as an independent cross-check of the
//! autocorrelation tracker and as the better choice for very harmonic-rich
//! voices.

use hum_linalg::fft::dft_real;

use crate::hz_to_midi;
use crate::pitch::{PitchTrack, PitchTrackerConfig};

/// Number of downsampled spectra multiplied into the product (fundamental
/// plus harmonics 2..=HARMONICS).
const HARMONICS: usize = 4;
/// Zero-padded FFT size (8 kHz / 2048 ≈ 3.9 Hz bins before interpolation).
const FFT_SIZE: usize = 2048;

/// Tracks pitch with the Harmonic Product Spectrum method: same hop,
/// voicing gates and median smoothing as [`crate::pitch::track_pitch`], but
/// with an analysis window of at least 64 ms (spectral resolution), so the
/// frame count can be slightly lower on short inputs.
///
/// # Panics
/// Panics on the same degenerate configurations as the autocorrelation
/// tracker.
pub fn track_pitch_hps(samples: &[f64], config: &PitchTrackerConfig) -> PitchTrack {
    let sr = config.sample_rate as f64;
    assert!(config.sample_rate > 0, "sample rate must be positive");
    assert!(config.frame_seconds > 0.0 && config.window_seconds >= config.frame_seconds);
    assert!(config.min_hz > 0.0 && config.max_hz > config.min_hz);
    assert!(config.max_hz <= sr / 2.0, "max_hz beyond Nyquist");

    let hop = (config.frame_seconds * sr).round() as usize;
    // Spectral resolution needs a longer window than the time-domain
    // tracker: at least 64 ms, or low fundamentals smear across the whole
    // harmonic product surface.
    let window = ((config.window_seconds.max(0.064) * sr).round() as usize).min(FFT_SIZE);

    let mut frames = Vec::new();
    let mut start = 0usize;
    while start + window <= samples.len() {
        frames.push(analyze_frame(&samples[start..start + window], sr, config));
        start += hop;
    }
    let mut track = PitchTrack { frames, frame_seconds: config.frame_seconds };
    if config.median_half_width > 0 {
        crate::pitch::median_filter_public(&mut track.frames, config.median_half_width);
    }
    track
}

fn analyze_frame(frame: &[f64], sr: f64, config: &PitchTrackerConfig) -> Option<f64> {
    let n = frame.len();
    let energy: f64 = frame.iter().map(|s| s * s).sum::<f64>() / n as f64;
    if energy.sqrt() < config.energy_threshold {
        return None;
    }

    // Hann window, zero-pad, magnitude spectrum.
    let mut padded = vec![0.0f64; FFT_SIZE];
    for (i, &s) in frame.iter().enumerate() {
        let w = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos());
        padded[i] = s * w;
    }
    let spectrum = dft_real(&padded);
    let half = FFT_SIZE / 2;
    let magnitude: Vec<f64> = spectrum[..half].iter().map(|z| z.abs()).collect();

    // Harmonic sum: Σ_h |X[h·bin]| over the fundamental range. A *linear*
    // sum is dominated by true spectral peaks; leakage tails (which sit an
    // order of magnitude below the peaks) cannot accumulate into a false
    // fundamental the way they can in a log-domain product.
    let bin_hz = sr / FFT_SIZE as f64;
    let lo_bin = (config.min_hz / bin_hz).floor().max(1.0) as usize;
    let hi_bin = ((config.max_hz / bin_hz).ceil() as usize).min(half / HARMONICS - 1);
    if lo_bin >= hi_bin {
        return None;
    }
    let mut best_bin = lo_bin;
    let mut best_score = f64::NEG_INFINITY;
    let mut scores = vec![0.0f64; hi_bin + 2];
    for bin in lo_bin..=hi_bin {
        let mut score = 0.0;
        for h in 1..=HARMONICS {
            score += magnitude[bin * h];
        }
        scores[bin] = score;
        if score > best_score {
            best_score = score;
            best_bin = bin;
        }
    }

    // Sub-octave guard: a candidate at f0/2 collects |X[f0]| + |X[2f0]|
    // through its even "harmonics" and can tie the true fundamental. If the
    // octave above scores comparably, it is the true fundamental.
    while best_bin * 2 <= hi_bin && scores[best_bin * 2] >= 0.8 * scores[best_bin] {
        best_bin *= 2;
    }
    best_score = scores[best_bin];

    // Voicing: the winning harmonic sum must stand clearly above the level
    // a flat (noise) spectrum would produce.
    let mean_magnitude: f64 =
        magnitude[lo_bin..half].iter().sum::<f64>() / (half - lo_bin) as f64;
    if best_score < 2.5 * HARMONICS as f64 * mean_magnitude {
        return None;
    }

    // Parabolic interpolation over the HPS scores for sub-bin precision.
    let refined_bin = if best_bin > lo_bin && best_bin < hi_bin {
        let (a, b, c) = (scores[best_bin - 1], scores[best_bin], scores[best_bin + 1]);
        let denom = a - 2.0 * b + c;
        if denom.abs() > 1e-12 {
            best_bin as f64 + 0.5 * (a - c) / denom
        } else {
            best_bin as f64
        }
    } else {
        best_bin as f64
    };
    Some(hz_to_midi(refined_bin * bin_hz))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pitch::track_pitch;
    use crate::synth::{HumNote, HumSynthesizer, SynthConfig};

    fn tone(freq: f64, seconds: f64) -> Vec<f64> {
        let sr = 8_000.0;
        (0..(seconds * sr) as usize)
            .map(|i| 0.8 * (2.0 * std::f64::consts::PI * freq * i as f64 / sr).sin())
            .collect()
    }

    #[test]
    fn pure_tones_are_tracked_within_a_quarter_tone() {
        for freq in [110.0, 220.0, 330.0, 440.0, 660.0] {
            let track = track_pitch_hps(&tone(freq, 0.5), &PitchTrackerConfig::default());
            assert!(track.voicing_rate() > 0.8, "{freq} Hz voicing {}", track.voicing_rate());
            let expect = hz_to_midi(freq);
            for p in track.voiced_series() {
                assert!((p - expect).abs() < 0.5, "{freq} Hz tracked at {p}, expected {expect}");
            }
        }
    }

    #[test]
    fn harmonic_rich_tone_does_not_octave_up() {
        // Strong 2nd/3rd harmonics tempt naive spectral peak-picking to
        // report 2f0; HPS must not.
        let sr = 8_000.0;
        let f0 = 180.0;
        let samples: Vec<f64> = (0..8_000)
            .map(|i| {
                let t = i as f64 / sr;
                0.3 * (2.0 * std::f64::consts::PI * f0 * t).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 2.0 * f0 * t).sin()
                    + 0.4 * (2.0 * std::f64::consts::PI * 3.0 * f0 * t).sin()
            })
            .collect();
        let track = track_pitch_hps(&samples, &PitchTrackerConfig::default());
        let expect = hz_to_midi(f0);
        let mut voiced = track.voiced_series();
        voiced.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = voiced[voiced.len() / 2];
        assert!((median - expect).abs() < 1.0, "median {median} vs {expect}");
    }

    #[test]
    fn silence_and_noise_are_unvoiced() {
        let cfg = PitchTrackerConfig::default();
        assert_eq!(track_pitch_hps(&vec![0.0; 4000], &cfg).voicing_rate(), 0.0);
        let mut state = 99u64;
        let noise: Vec<f64> = (0..8000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        let track = track_pitch_hps(&noise, &cfg);
        assert!(track.voicing_rate() < 0.3, "noise voicing {}", track.voicing_rate());
    }

    #[test]
    fn agrees_with_the_autocorrelation_tracker_on_hums() {
        let synth = HumSynthesizer::new(SynthConfig::default());
        let audio = synth.render(&[
            HumNote { midi: 57.0, seconds: 0.5 },
            HumNote { midi: 64.0, seconds: 0.5 },
            HumNote { midi: 60.0, seconds: 0.5 },
        ]);
        // Equal windows -> frame-aligned outputs.
        let cfg = PitchTrackerConfig { window_seconds: 0.064, ..PitchTrackerConfig::default() };
        let acf = track_pitch(&audio, &cfg);
        let hps = track_pitch_hps(&audio, &cfg);
        assert_eq!(acf.frames.len(), hps.frames.len());
        let mut diffs: Vec<f64> = acf
            .frames
            .iter()
            .zip(&hps.frames)
            .filter_map(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => Some((x - y).abs()),
                _ => None,
            })
            .collect();
        assert!(diffs.len() > 50, "too few co-voiced frames: {}", diffs.len());
        diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = diffs[diffs.len() / 2];
        assert!(median < 0.5, "trackers disagree by {median} semitones (median)");
    }
}
