//! Hum synthesis.
//!
//! Renders a melody as the waveform a hummer would produce into a
//! microphone: a harmonic tone with vibrato, smooth pitch glides between
//! notes (humming is legato — the property that defeats note segmentation,
//! paper §2), breath noise, and per-note amplitude envelopes with optional
//! inter-note dips rather than true silence.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::midi_to_hz;

/// One note of the hum to synthesize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HumNote {
    /// Target pitch as a (possibly fractional) MIDI note number.
    pub midi: f64,
    /// Duration in seconds.
    pub seconds: f64,
}

/// Synthesis parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Output sample rate in Hz.
    pub sample_rate: u32,
    /// Vibrato depth in semitones (typical hummers: 0.1–0.5).
    pub vibrato_semitones: f64,
    /// Vibrato rate in Hz (typical: 4–7).
    pub vibrato_hz: f64,
    /// Portamento time between notes in seconds (legato glide).
    pub glide_seconds: f64,
    /// Relative amplitudes of harmonics 1..=N (fundamental first).
    pub harmonics: [f64; 4],
    /// Breath-noise amplitude relative to the tone.
    pub noise_level: f64,
    /// Attack/release time of each note's amplitude envelope, seconds.
    pub envelope_seconds: f64,
    /// Amplitude dip between notes (0 = fully connected legato, 1 = full
    /// silence between notes).
    pub articulation_dip: f64,
    /// Depth of slow amplitude tremolo (0..1): hummers do not hold steady
    /// loudness, which makes frames drop in and out of the tracker's
    /// voicing gate exactly as real recordings do.
    pub tremolo_depth: f64,
    /// Tremolo rate in Hz.
    pub tremolo_hz: f64,
    /// RNG seed for the noise component.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            sample_rate: 8_000,
            vibrato_semitones: 0.25,
            vibrato_hz: 5.0,
            glide_seconds: 0.04,
            harmonics: [1.0, 0.35, 0.15, 0.05],
            noise_level: 0.02,
            envelope_seconds: 0.02,
            articulation_dip: 0.25,
            tremolo_depth: 0.35,
            tremolo_hz: 2.3,
            seed: 0x5eed,
        }
    }
}

/// A melody-to-waveform synthesizer.
#[derive(Debug, Clone)]
pub struct HumSynthesizer {
    config: SynthConfig,
}

impl HumSynthesizer {
    /// Creates a synthesizer with the given parameters.
    ///
    /// # Panics
    /// Panics on a zero sample rate.
    pub fn new(config: SynthConfig) -> Self {
        assert!(config.sample_rate > 0, "sample rate must be positive");
        HumSynthesizer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Renders the melody, returning samples in `[-1, 1]`.
    ///
    /// Returns an empty buffer for an empty melody.
    pub fn render(&self, melody: &[HumNote]) -> Vec<f64> {
        let cfg = &self.config;
        let sr = cfg.sample_rate as f64;
        let total_seconds: f64 = melody.iter().map(|n| n.seconds.max(0.0)).sum();
        let total_samples = (total_seconds * sr).round() as usize;
        let mut out = Vec::with_capacity(total_samples);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut phase = 0.0f64;
        let mut prev_midi: Option<f64> = None;
        for note in melody {
            let n_samples = (note.seconds.max(0.0) * sr).round() as usize;
            if n_samples == 0 {
                continue;
            }
            let glide_samples =
                ((cfg.glide_seconds * sr).round() as usize).min(n_samples / 2).max(1);
            let env_samples =
                ((cfg.envelope_seconds * sr).round() as usize).min(n_samples / 2).max(1);
            let from_midi = prev_midi.unwrap_or(note.midi);
            // Loudness varies note to note (breath support).
            let note_amp = 0.6 + 0.4 * rng.random::<f64>();
            let tremolo_phase = rng.random::<f64>() * std::f64::consts::TAU;
            for i in 0..n_samples {
                let t = out.len() as f64 / sr;
                // Pitch: glide from the previous note, then vibrato.
                let glide = if i < glide_samples {
                    let u = i as f64 / glide_samples as f64;
                    from_midi + (note.midi - from_midi) * smoothstep(u)
                } else {
                    note.midi
                };
                let vibrato = cfg.vibrato_semitones
                    * (2.0 * std::f64::consts::PI * cfg.vibrato_hz * t).sin();
                let freq = midi_to_hz(glide + vibrato);
                phase += 2.0 * std::f64::consts::PI * freq / sr;

                // Harmonic tone.
                let mut tone = 0.0;
                for (h, &amp) in cfg.harmonics.iter().enumerate() {
                    tone += amp * (phase * (h + 1) as f64).sin();
                }
                let norm: f64 = cfg.harmonics.iter().sum();
                tone /= norm.max(1e-9);

                // Envelope: attack, optional articulation dip at the end.
                let mut env = 1.0;
                if i < env_samples {
                    env *= i as f64 / env_samples as f64;
                }
                if i + env_samples >= n_samples {
                    let u = (n_samples - i) as f64 / env_samples as f64;
                    env *= 1.0 - cfg.articulation_dip * (1.0 - u);
                }

                let tremolo = 1.0
                    - cfg.tremolo_depth
                        * (0.5 + 0.5
                            * (2.0 * std::f64::consts::PI * cfg.tremolo_hz * t + tremolo_phase)
                                .sin());
                let noise = cfg.noise_level * (rng.random::<f64>() * 2.0 - 1.0);
                out.push((0.6 * note_amp * tremolo * env * tone + noise).clamp(-1.0, 1.0));
            }
            prev_midi = Some(note.midi);
        }
        out
    }
}

/// Cubic smoothstep on `[0, 1]`.
fn smoothstep(u: f64) -> f64 {
    let u = u.clamp(0.0, 1.0);
    u * u * (3.0 - 2.0 * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SynthConfig {
        SynthConfig::default()
    }

    #[test]
    fn output_length_matches_melody_duration() {
        let synth = HumSynthesizer::new(config());
        let melody = vec![
            HumNote { midi: 60.0, seconds: 0.5 },
            HumNote { midi: 64.0, seconds: 0.25 },
        ];
        let samples = synth.render(&melody);
        assert_eq!(samples.len(), (0.75 * 8000.0) as usize);
    }

    #[test]
    fn samples_stay_in_range() {
        let synth = HumSynthesizer::new(config());
        let melody = vec![HumNote { midi: 72.0, seconds: 0.3 }];
        for s in synth.render(&melody) {
            assert!((-1.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn dominant_frequency_matches_note() {
        // Render a steady tone and estimate its period from zero crossings.
        let mut cfg = config();
        cfg.vibrato_semitones = 0.0;
        cfg.noise_level = 0.0;
        cfg.harmonics = [1.0, 0.0, 0.0, 0.0];
        let synth = HumSynthesizer::new(cfg);
        let melody = vec![HumNote { midi: 69.0, seconds: 1.0 }]; // A4 = 440 Hz
        let samples = synth.render(&melody);
        // Skip the attack, count upward zero crossings over 0.5 s.
        let body = &samples[2000..6000];
        let crossings = body.windows(2).filter(|w| w[0] < 0.0 && w[1] >= 0.0).count();
        let est_hz = crossings as f64 / 0.5;
        assert!((est_hz - 440.0).abs() < 10.0, "estimated {est_hz} Hz");
    }

    #[test]
    fn rendering_is_deterministic_for_a_seed() {
        let synth = HumSynthesizer::new(config());
        let melody = vec![HumNote { midi: 65.0, seconds: 0.2 }];
        assert_eq!(synth.render(&melody), synth.render(&melody));
    }

    #[test]
    fn different_seeds_differ_in_noise() {
        let mut a_cfg = config();
        a_cfg.noise_level = 0.05;
        let mut b_cfg = a_cfg;
        b_cfg.seed = 999;
        let melody = vec![HumNote { midi: 65.0, seconds: 0.2 }];
        let a = HumSynthesizer::new(a_cfg).render(&melody);
        let b = HumSynthesizer::new(b_cfg).render(&melody);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_and_zero_duration_melodies() {
        let synth = HumSynthesizer::new(config());
        assert!(synth.render(&[]).is_empty());
        assert!(synth.render(&[HumNote { midi: 60.0, seconds: 0.0 }]).is_empty());
    }

    #[test]
    fn smoothstep_endpoints() {
        assert_eq!(smoothstep(0.0), 0.0);
        assert_eq!(smoothstep(1.0), 1.0);
        assert_eq!(smoothstep(0.5), 0.5);
        assert_eq!(smoothstep(-1.0), 0.0);
    }
}
