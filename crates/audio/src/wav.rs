//! Mono PCM16 WAV (RIFF) read/write.

/// Errors produced while parsing WAV data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WavError {
    /// Missing or malformed RIFF/WAVE/fmt/data structure.
    BadFormat(String),
    /// The byte stream ended mid-structure.
    UnexpectedEof,
    /// Valid WAV, but not mono 16-bit PCM.
    Unsupported(String),
}

impl std::fmt::Display for WavError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WavError::BadFormat(msg) => write!(f, "bad WAV data: {msg}"),
            WavError::UnexpectedEof => write!(f, "unexpected end of WAV data"),
            WavError::Unsupported(msg) => write!(f, "unsupported WAV variant: {msg}"),
        }
    }
}

impl std::error::Error for WavError {}

/// Serializes mono samples (clamped to `[-1, 1]`) as a 16-bit PCM WAV file.
///
/// # Panics
/// Panics if `sample_rate` is zero.
pub fn write_wav_mono(samples: &[f64], sample_rate: u32) -> Vec<u8> {
    assert!(sample_rate > 0, "sample rate must be positive");
    let data_len = samples.len() * 2;
    let mut out = Vec::with_capacity(44 + data_len);
    out.extend_from_slice(b"RIFF");
    out.extend_from_slice(&((36 + data_len) as u32).to_le_bytes());
    out.extend_from_slice(b"WAVE");
    out.extend_from_slice(b"fmt ");
    out.extend_from_slice(&16u32.to_le_bytes()); // fmt chunk size
    out.extend_from_slice(&1u16.to_le_bytes()); // PCM
    out.extend_from_slice(&1u16.to_le_bytes()); // mono
    out.extend_from_slice(&sample_rate.to_le_bytes());
    out.extend_from_slice(&(sample_rate * 2).to_le_bytes()); // byte rate
    out.extend_from_slice(&2u16.to_le_bytes()); // block align
    out.extend_from_slice(&16u16.to_le_bytes()); // bits per sample
    out.extend_from_slice(b"data");
    out.extend_from_slice(&(data_len as u32).to_le_bytes());
    for &s in samples {
        let clamped = s.clamp(-1.0, 1.0);
        let q = (clamped * i16::MAX as f64).round() as i16;
        out.extend_from_slice(&q.to_le_bytes());
    }
    out
}

/// Parses a mono 16-bit PCM WAV file, returning `(samples, sample_rate)`
/// with samples scaled to `[-1, 1]`.
pub fn read_wav_mono(data: &[u8]) -> Result<(Vec<f64>, u32), WavError> {
    if data.len() < 12 {
        return Err(WavError::UnexpectedEof);
    }
    if &data[0..4] != b"RIFF" || &data[8..12] != b"WAVE" {
        return Err(WavError::BadFormat("missing RIFF/WAVE magic".into()));
    }
    let mut pos = 12usize;
    let mut fmt: Option<(u16, u16, u32, u16)> = None; // (codec, channels, rate, bits)
    let mut pcm: Option<Vec<f64>> = None;

    while pos + 8 <= data.len() {
        let id = &data[pos..pos + 4];
        let len = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
        pos += 8;
        if data.len() < pos + len {
            return Err(WavError::UnexpectedEof);
        }
        let body = &data[pos..pos + len];
        match id {
            b"fmt " => {
                if len < 16 {
                    return Err(WavError::BadFormat("fmt chunk too short".into()));
                }
                fmt = Some((
                    u16::from_le_bytes([body[0], body[1]]),
                    u16::from_le_bytes([body[2], body[3]]),
                    u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")),
                    u16::from_le_bytes([body[14], body[15]]),
                ));
            }
            b"data" => {
                let samples = body
                    .chunks_exact(2)
                    .map(|c| i16::from_le_bytes([c[0], c[1]]) as f64 / i16::MAX as f64)
                    .collect();
                pcm = Some(samples);
            }
            _ => {} // skip LIST/INFO/etc.
        }
        pos += len + (len & 1); // chunks are word-aligned
    }

    let (codec, channels, rate, bits) =
        fmt.ok_or_else(|| WavError::BadFormat("missing fmt chunk".into()))?;
    if codec != 1 {
        return Err(WavError::Unsupported(format!("codec {codec}")));
    }
    if channels != 1 {
        return Err(WavError::Unsupported(format!("{channels} channels")));
    }
    if bits != 16 {
        return Err(WavError::Unsupported(format!("{bits} bits per sample")));
    }
    let samples = pcm.ok_or_else(|| WavError::BadFormat("missing data chunk".into()))?;
    Ok((samples, rate))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_samples_within_quantization() {
        let samples: Vec<f64> = (0..500).map(|i| (i as f64 * 0.05).sin() * 0.8).collect();
        let bytes = write_wav_mono(&samples, 16_000);
        let (back, rate) = read_wav_mono(&bytes).unwrap();
        assert_eq!(rate, 16_000);
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(&back) {
            assert!((a - b).abs() < 1.0 / 16384.0);
        }
    }

    #[test]
    fn clipping_is_applied() {
        let bytes = write_wav_mono(&[2.0, -3.0], 8_000);
        let (back, _) = read_wav_mono(&bytes).unwrap();
        assert!((back[0] - 1.0).abs() < 1e-4);
        assert!((back[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn header_fields_are_correct() {
        let bytes = write_wav_mono(&[0.0; 10], 44_100);
        assert_eq!(&bytes[0..4], b"RIFF");
        assert_eq!(&bytes[8..12], b"WAVE");
        assert_eq!(u32::from_le_bytes(bytes[24..28].try_into().unwrap()), 44_100);
        assert_eq!(u16::from_le_bytes(bytes[22..24].try_into().unwrap()), 1); // mono
        assert_eq!(u32::from_le_bytes(bytes[40..44].try_into().unwrap()), 20); // data len
    }

    #[test]
    fn stereo_is_rejected() {
        let mut bytes = write_wav_mono(&[0.0; 4], 8_000);
        bytes[22] = 2; // channels
        assert!(matches!(read_wav_mono(&bytes), Err(WavError::Unsupported(_))));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = write_wav_mono(&[0.1; 100], 8_000);
        assert_eq!(read_wav_mono(&bytes[..50]), Err(WavError::UnexpectedEof));
    }

    #[test]
    fn unknown_chunks_are_skipped() {
        // Insert a LIST chunk between fmt and data.
        let clean = write_wav_mono(&[0.5, -0.5], 8_000);
        let mut bytes = clean[..36].to_vec();
        bytes.extend_from_slice(b"LIST");
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(b"INFO");
        bytes.extend_from_slice(&clean[36..]);
        // Patch RIFF size.
        let total = bytes.len() as u32 - 8;
        bytes[4..8].copy_from_slice(&total.to_le_bytes());
        let (samples, _) = read_wav_mono(&bytes).unwrap();
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn empty_audio_roundtrips() {
        let bytes = write_wav_mono(&[], 8_000);
        let (samples, _) = read_wav_mono(&bytes).unwrap();
        assert!(samples.is_empty());
    }
}
