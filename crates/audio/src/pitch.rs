//! Frame-based autocorrelation pitch tracking (paper §3.1).
//!
//! The acoustic input is segmented into 10 ms frames and each frame is
//! resolved to a pitch, yielding the pitch time series of Figure 1. The
//! tracker here follows the classic autocorrelation recipe (a simplified
//! main loop of the Tolonen-Karjalainen analysis the paper cites): per-frame
//! normalized autocorrelation over a plausible F0 lag range, peak picking
//! with parabolic interpolation, an energy + clarity voicing gate, and a
//! median post-filter to remove octave blips.

use crate::hz_to_midi;

/// Tracker parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PitchTrackerConfig {
    /// Input sample rate in Hz.
    pub sample_rate: u32,
    /// Frame hop in seconds (the paper uses 10 ms).
    pub frame_seconds: f64,
    /// Analysis window in seconds (longer than the hop for low pitches).
    pub window_seconds: f64,
    /// Lowest detectable fundamental in Hz.
    pub min_hz: f64,
    /// Highest detectable fundamental in Hz.
    pub max_hz: f64,
    /// RMS energy below which a frame is unvoiced.
    pub energy_threshold: f64,
    /// Normalized autocorrelation below which a frame is unvoiced.
    pub clarity_threshold: f64,
    /// Median filter half-width in frames (0 disables smoothing).
    pub median_half_width: usize,
}

impl Default for PitchTrackerConfig {
    fn default() -> Self {
        PitchTrackerConfig {
            sample_rate: 8_000,
            frame_seconds: 0.010,
            window_seconds: 0.030,
            min_hz: 80.0,
            max_hz: 1_000.0,
            energy_threshold: 0.01,
            clarity_threshold: 0.5,
            median_half_width: 2,
        }
    }
}

/// The tracker output: one entry per frame, `None` where unvoiced.
#[derive(Debug, Clone, PartialEq)]
pub struct PitchTrack {
    /// Per-frame pitch in fractional MIDI note numbers; `None` = unvoiced.
    pub frames: Vec<Option<f64>>,
    /// Frame hop in seconds.
    pub frame_seconds: f64,
}

impl PitchTrack {
    /// The voiced pitch values with silence dropped — the paper's input to
    /// matching ("we simply ignore the silent information", §3.2).
    pub fn voiced_series(&self) -> Vec<f64> {
        self.frames.iter().filter_map(|f| *f).collect()
    }

    /// Fraction of frames that are voiced.
    pub fn voicing_rate(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().filter(|f| f.is_some()).count() as f64 / self.frames.len() as f64
    }
}

/// Tracks pitch over `samples`, returning one (possibly unvoiced) pitch per
/// 10 ms-class frame.
///
/// # Panics
/// Panics if the configuration is degenerate (zero rate, inverted range…).
pub fn track_pitch(samples: &[f64], config: &PitchTrackerConfig) -> PitchTrack {
    let sr = config.sample_rate as f64;
    assert!(config.sample_rate > 0, "sample rate must be positive");
    assert!(config.frame_seconds > 0.0 && config.window_seconds >= config.frame_seconds);
    assert!(config.min_hz > 0.0 && config.max_hz > config.min_hz);
    assert!(config.max_hz <= sr / 2.0, "max_hz beyond Nyquist");

    let hop = (config.frame_seconds * sr).round() as usize;
    let window = (config.window_seconds * sr).round() as usize;
    let min_lag = (sr / config.max_hz).floor().max(1.0) as usize;
    let max_lag = (sr / config.min_hz).ceil() as usize;

    let mut frames = Vec::new();
    let mut start = 0usize;
    while start + window <= samples.len() {
        let frame = &samples[start..start + window];
        frames.push(analyze_frame(frame, sr, min_lag, max_lag, config));
        start += hop;
    }
    if config.median_half_width > 0 {
        median_filter(&mut frames, config.median_half_width);
    }
    PitchTrack { frames, frame_seconds: config.frame_seconds }
}

fn analyze_frame(
    frame: &[f64],
    sr: f64,
    min_lag: usize,
    max_lag: usize,
    config: &PitchTrackerConfig,
) -> Option<f64> {
    let n = frame.len();
    let energy: f64 = frame.iter().map(|s| s * s).sum::<f64>() / n as f64;
    if energy.sqrt() < config.energy_threshold {
        return None;
    }
    let mean = frame.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = frame.iter().map(|s| s - mean).collect();
    let r0: f64 = centered.iter().map(|s| s * s).sum();
    if r0 <= 0.0 {
        return None;
    }

    let max_lag = max_lag.min(n - 1);
    if min_lag >= max_lag {
        return None;
    }
    // Normalized cross-correlation of the two overlapping segments,
    // `Σ x_i·x_{i+τ} / √(Σ x_i² · Σ x_{i+τ}²)`. Normalizing by the actual
    // overlap energies (rather than r(0)) removes the short-lag bias of the
    // plain autocorrelation, which would otherwise lock onto harmonics for
    // low fundamentals.
    let mut best_lag = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    let mut corr = vec![0.0; max_lag + 1];
    // Prefix sums of squared samples for O(1) overlap energies.
    let mut prefix_sq = vec![0.0; n + 1];
    for (i, &c) in centered.iter().enumerate() {
        prefix_sq[i + 1] = prefix_sq[i] + c * c;
    }
    for lag in min_lag..=max_lag {
        let overlap = n - lag;
        let mut acc = 0.0;
        for i in 0..overlap {
            acc += centered[i] * centered[i + lag];
        }
        let e_head = prefix_sq[overlap];
        let e_tail = prefix_sq[n] - prefix_sq[lag];
        let denom = (e_head * e_tail).sqrt();
        let val = if denom > 1e-12 { acc / denom } else { 0.0 };
        corr[lag] = val;
        if val > best_val {
            best_val = val;
            best_lag = lag;
        }
    }
    if best_val < config.clarity_threshold {
        return None;
    }

    // Subharmonic guard: a perfectly periodic frame correlates equally well
    // at 2T, 3T, … Pick the *smallest* lag that is a local peak within a
    // small margin of the global maximum (classic first-peak picking).
    for lag in min_lag..=max_lag {
        let left_ok = lag == min_lag || corr[lag] >= corr[lag - 1];
        let right_ok = lag == max_lag || corr[lag] >= corr[lag + 1];
        if left_ok && right_ok && corr[lag] >= best_val - 0.06 {
            best_lag = lag;
            break;
        }
    }

    // Parabolic interpolation around the peak for sub-sample lag precision.
    let refined = if best_lag > min_lag && best_lag < max_lag {
        let (a, b, c) = (corr[best_lag - 1], corr[best_lag], corr[best_lag + 1]);
        let denom = a - 2.0 * b + c;
        if denom.abs() > 1e-12 {
            best_lag as f64 + 0.5 * (a - c) / denom
        } else {
            best_lag as f64
        }
    } else {
        best_lag as f64
    };
    Some(hz_to_midi(sr / refined))
}

/// In-place median filter over voiced runs; unvoiced frames are untouched
/// and excluded from windows. Shared with the HPS tracker.
pub(crate) fn median_filter_public(frames: &mut [Option<f64>], half_width: usize) {
    median_filter(frames, half_width);
}

/// In-place median filter over voiced runs; unvoiced frames are untouched
/// and excluded from windows.
fn median_filter(frames: &mut [Option<f64>], half_width: usize) {
    let snapshot: Vec<Option<f64>> = frames.to_vec();
    for i in 0..frames.len() {
        if snapshot[i].is_none() {
            continue;
        }
        let lo = i.saturating_sub(half_width);
        let hi = (i + half_width).min(frames.len() - 1);
        let mut window: Vec<f64> = snapshot[lo..=hi].iter().filter_map(|f| *f).collect();
        window.sort_by(|a, b| a.partial_cmp(b).expect("finite pitches"));
        frames[i] = Some(window[window.len() / 2]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{HumNote, HumSynthesizer, SynthConfig};

    fn clean_synth() -> HumSynthesizer {
        HumSynthesizer::new(SynthConfig {
            vibrato_semitones: 0.0,
            noise_level: 0.0,
            ..SynthConfig::default()
        })
    }

    #[test]
    fn pure_tone_is_tracked_accurately() {
        let sr = 8_000.0;
        let samples: Vec<f64> =
            (0..8_000).map(|i| (2.0 * std::f64::consts::PI * 220.0 * i as f64 / sr).sin()).collect();
        let track = track_pitch(&samples, &PitchTrackerConfig::default());
        assert!(track.voicing_rate() > 0.95);
        for p in track.voiced_series() {
            assert!((p - 57.0).abs() < 0.3, "pitch {p} should be near A3 = 57");
        }
    }

    #[test]
    fn synthesized_hum_recovers_the_melody() {
        let melody =
            vec![HumNote { midi: 60.0, seconds: 0.4 }, HumNote { midi: 67.0, seconds: 0.4 }];
        let samples = clean_synth().render(&melody);
        let track = track_pitch(&samples, &PitchTrackerConfig::default());
        let series = track.voiced_series();
        assert!(!series.is_empty());
        // First and last thirds should sit near the two notes.
        let first = &series[..series.len() / 3];
        let last = &series[2 * series.len() / 3..];
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean(first) - 60.0).abs() < 0.8, "got {}", mean(first));
        assert!((mean(last) - 67.0).abs() < 0.8, "got {}", mean(last));
    }

    #[test]
    fn silence_is_unvoiced() {
        let track = track_pitch(&vec![0.0; 4_000], &PitchTrackerConfig::default());
        assert_eq!(track.voicing_rate(), 0.0);
        assert!(track.voiced_series().is_empty());
    }

    #[test]
    fn white_noise_is_mostly_unvoiced() {
        // LCG noise has no periodicity in the F0 range.
        let mut state = 12345u64;
        let samples: Vec<f64> = (0..8_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        let track = track_pitch(&samples, &PitchTrackerConfig::default());
        assert!(track.voicing_rate() < 0.3, "voicing {}", track.voicing_rate());
    }

    #[test]
    fn frame_count_matches_hop() {
        let samples = vec![0.0; 8_000]; // 1 s at 8 kHz
        let track = track_pitch(&samples, &PitchTrackerConfig::default());
        // hop = 80 samples, window = 240: (8000-240)/80 + 1 = 98 frames.
        assert_eq!(track.frames.len(), 98);
    }

    #[test]
    fn median_filter_removes_blips() {
        let mut frames = vec![Some(60.0); 9];
        frames[4] = Some(72.0); // octave blip
        median_filter(&mut frames, 2);
        assert_eq!(frames[4], Some(60.0));
    }

    #[test]
    fn median_filter_preserves_unvoiced_gaps() {
        let mut frames = vec![Some(60.0), None, Some(60.0)];
        median_filter(&mut frames, 1);
        assert_eq!(frames[1], None);
    }

    #[test]
    fn vibrato_stays_within_half_semitone() {
        let synth = HumSynthesizer::new(SynthConfig {
            vibrato_semitones: 0.3,
            noise_level: 0.0,
            ..SynthConfig::default()
        });
        let samples = synth.render(&[HumNote { midi: 64.0, seconds: 1.0 }]);
        let track = track_pitch(&samples, &PitchTrackerConfig::default());
        for p in track.voiced_series() {
            assert!((p - 64.0).abs() < 0.8, "pitch {p}");
        }
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn max_hz_beyond_nyquist_rejected() {
        let cfg = PitchTrackerConfig { max_hz: 6_000.0, ..PitchTrackerConfig::default() };
        let _ = track_pitch(&[0.0; 100], &cfg);
    }
}
