//! Property-based tests for the audio substrate.

use hum_audio::{
    hz_to_midi, midi_to_hz, read_wav_mono, track_pitch, write_wav_mono, PitchTrackerConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wav_roundtrip_any_samples(
        samples in proptest::collection::vec(-1.0f64..1.0, 0..500),
        rate in prop_oneof![Just(8_000u32), Just(16_000), Just(44_100)],
    ) {
        let bytes = write_wav_mono(&samples, rate);
        let (back, got_rate) = read_wav_mono(&bytes).expect("own output must parse");
        prop_assert_eq!(got_rate, rate);
        prop_assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1.0 / 16_000.0);
        }
    }

    #[test]
    fn wav_parser_never_panics_on_mutation(
        samples in proptest::collection::vec(-1.0f64..1.0, 1..100),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..6),
    ) {
        let mut bytes = write_wav_mono(&samples, 8_000);
        for (idx, val) in flips {
            let at = idx.index(bytes.len());
            bytes[at] = val;
        }
        let _ = read_wav_mono(&bytes);
    }

    #[test]
    fn midi_hz_conversion_is_monotone_and_invertible(m in 20.0f64..110.0) {
        let hz = midi_to_hz(m);
        prop_assert!(hz > 0.0);
        prop_assert!((hz_to_midi(hz) - m).abs() < 1e-9);
        prop_assert!(midi_to_hz(m + 1.0) > hz);
        // One octave doubles the frequency.
        prop_assert!((midi_to_hz(m + 12.0) / hz - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tracker_finds_pure_tones_within_a_quarter_tone(freq in 100.0f64..900.0) {
        let sr = 8_000.0;
        let samples: Vec<f64> = (0..8_000)
            .map(|i| 0.8 * (2.0 * std::f64::consts::PI * freq * i as f64 / sr).sin())
            .collect();
        let track = track_pitch(&samples, &PitchTrackerConfig::default());
        prop_assert!(track.voicing_rate() > 0.9, "voicing {}", track.voicing_rate());
        let expect = hz_to_midi(freq);
        for p in track.voiced_series() {
            prop_assert!((p - expect).abs() < 0.5, "tracked {} expected {}", p, expect);
        }
    }

    #[test]
    fn tracker_gates_out_quiet_signals(gain in 0.0f64..0.005) {
        let sr = 8_000.0;
        let samples: Vec<f64> = (0..4_000)
            .map(|i| gain * (2.0 * std::f64::consts::PI * 220.0 * i as f64 / sr).sin())
            .collect();
        let track = track_pitch(&samples, &PitchTrackerConfig::default());
        prop_assert_eq!(track.voicing_rate(), 0.0);
    }
}
