//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [EXPERIMENT ...] [--quick] [--out DIR]
//!
//! EXPERIMENT: table2 | table3 | fig6 | fig7 | fig8 | fig9 | fig10 | extras
//!             | throughput | obs | serve | kernels | stream | ingest
//!             | scale | all
//!             (default: all; `extras` runs the DESIGN.md ablations,
//!             `throughput` the batched-query scaling sweep, `obs` the
//!             traced cascade-trajectory run of the Figure-9 workload,
//!             `serve` the TCP-serving latency/throughput sweep, `kernels`
//!             the kernel-layer microbenchmarks with bit-identity checks,
//!             `stream` the sessionful refinement latency/churn sweep,
//!             `ingest` the segmented-store durable-ingest cost sweep,
//!             `scale` the decade-sweep planner-vs-fixed-transform harness)
//! --quick     small workloads (seconds instead of minutes)
//! --out DIR   where to write .txt/.csv/.json results (default: results)
//! ```

use std::path::PathBuf;
use std::time::Instant;

use hum_bench::experiments::{
    extras, fig10, fig6, fig7, fig8, fig9, ingest, kernels, obs, scale, serve, stream, table2,
    table3, throughput,
};
use hum_bench::report::persist;

const EXPERIMENTS: [&str; 15] = [
    "table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "extras", "throughput", "obs",
    "serve", "kernels", "stream", "ingest", "scale",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut selected: Vec<String> = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return usage("--out needs a directory"),
            },
            "all" => selected.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            name if EXPERIMENTS.contains(&name) => selected.push(name.to_string()),
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument: {other}")),
        }
    }
    if selected.is_empty() {
        selected.extend(EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    selected.dedup();

    println!(
        "Reproducing {} experiment(s) at {} scale; results -> {}\n",
        selected.len(),
        if quick { "quick" } else { "paper" },
        out_dir.display()
    );

    let mut shape_failures: Vec<(String, Vec<String>)> = Vec::new();
    for name in &selected {
        let started = Instant::now();
        println!("=== {name} ===");
        let failures = match name.as_str() {
            "table2" => {
                let params =
                    if quick { table2::Params::quick() } else { table2::Params::paper() };
                let output = table2::run(&params);
                let (text, table) = table2::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                table2::check(&output)
            }
            "table3" => {
                let params =
                    if quick { table3::Params::quick() } else { table3::Params::paper() };
                let output = table3::run(&params);
                let (text, table) = table3::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                table3::check(&output)
            }
            "fig6" => {
                let params = if quick { fig6::Params::quick() } else { fig6::Params::paper() };
                let output = fig6::run(&params);
                let (text, table) = fig6::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                fig6::verify_shape(&output)
            }
            "fig7" => {
                let params = if quick { fig7::Params::quick() } else { fig7::Params::paper() };
                let output = fig7::run(&params);
                let (text, table) = fig7::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                fig7::verify_shape(&output)
            }
            "fig8" => {
                let params = if quick { fig8::Params::quick() } else { fig8::Params::paper() };
                let output = fig8::run(&params);
                let (text, table) = fig8::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                fig8::check(&output)
            }
            "fig9" => {
                let params = if quick { fig9::Params::quick() } else { fig9::Params::paper() };
                let output = fig9::run(&params);
                let (text, table) = fig9::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                fig9::check(&output)
            }
            "fig10" => {
                let params =
                    if quick { fig10::Params::quick() } else { fig10::Params::paper() };
                let output = fig10::run(&params);
                let (text, table) = fig10::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                fig10::check(&output)
            }
            "extras" => {
                let params =
                    if quick { extras::Params::quick() } else { extras::Params::paper() };
                let output = extras::run(&params);
                let (text, table) = extras::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                extras::check(&output)
            }
            "throughput" => {
                let params =
                    if quick { throughput::Params::quick() } else { throughput::Params::paper() };
                let output = throughput::run(&params);
                let (text, table) = throughput::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                throughput::check(&output)
            }
            "obs" => {
                let params = if quick { obs::Params::quick() } else { obs::Params::paper() };
                let output = obs::run(&params);
                let (text, table) = obs::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                obs::check(&output)
            }
            "kernels" => {
                let params =
                    if quick { kernels::Params::quick() } else { kernels::Params::paper() };
                let output = kernels::run(&params);
                let (text, table) = kernels::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                kernels::check(&output)
            }
            "serve" => {
                let params = if quick { serve::Params::quick() } else { serve::Params::paper() };
                let output = serve::run(&params);
                let (text, table) = serve::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                serve::check(&output)
            }
            "stream" => {
                let params =
                    if quick { stream::Params::quick() } else { stream::Params::paper() };
                let output = stream::run(&params);
                let (text, table) = stream::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                stream::check(&output)
            }
            "ingest" => {
                let params =
                    if quick { ingest::Params::quick() } else { ingest::Params::paper() };
                let output = ingest::run(&params);
                let (text, table) = ingest::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                ingest::check(&output)
            }
            "scale" => {
                let params = if quick { scale::Params::quick() } else { scale::Params::paper() };
                let output = scale::run(&params);
                let (text, table) = scale::render(&output);
                println!("{text}");
                persist(&out_dir, name, &text, &table, &serde_json::json!(output));
                scale::check(&output)
            }
            _ => unreachable!("validated above"),
        };
        println!("[{name} finished in {:.1}s]\n", started.elapsed().as_secs_f64());
        if !failures.is_empty() {
            shape_failures.push((name.clone(), failures));
        }
    }

    if shape_failures.is_empty() {
        println!("All reproduced experiments match the paper's qualitative shape.");
    } else {
        println!("Shape deviations detected:");
        for (name, failures) in &shape_failures {
            for f in failures {
                println!("  {name}: {f}");
            }
        }
        std::process::exit(1);
    }
}

fn usage(error: &str) {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: repro [EXPERIMENT ...] [--quick] [--out DIR]\n\
         experiments: {} | all",
        EXPERIMENTS.join(" | ")
    );
    if !error.is_empty() {
        std::process::exit(2);
    }
}
