//! Sustained-ingest cost: durable bytes per insert and insert throughput
//! for the segmented store, against the full-snapshot-rewrite baseline the
//! store replaces.
//!
//! Before the storage engine, making insert `i` durable meant rewriting
//! the whole snapshot — `O(i)` bytes per insert, `O(n²)` for a corpus.
//! The store writes a bounded segment per memtable flush plus a small
//! manifest, so the amortized durable cost per insert is proportional to
//! the melody, not the corpus. This experiment measures both sides and
//! reports the ratio, and verifies the ingested store still answers
//! queries bit-identically to the monolithic in-memory build.
//!
//! The rewrite baseline is *estimated*, not replayed: snapshot size is
//! linear in the entry count, so the per-insert rewrite cost is sampled at
//! a few prefix sizes and trapezoid-integrated instead of serializing all
//! `n` prefixes (which is the very `O(n²)` behavior being retired).

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::generate_hums;
use hum_qbh::storage::write_database;
use hum_qbh::system::{QbhConfig, QbhSystem, StoreOptions};

use crate::report::{fmt1, TextTable};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Corpus melodies to ingest.
    pub melodies: usize,
    /// Memtable capacities (melodies per flush) to sweep.
    pub memtable_capacities: Vec<usize>,
    /// Segment count that triggers compaction during ingest.
    pub compact_at: usize,
    /// Hummed queries for the bit-identity check.
    pub queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Params {
            melodies: 10_000,
            memtable_capacities: vec![64, 256, 1024],
            compact_at: 8,
            queries: 10,
            seed: 31,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params {
            melodies: 600,
            memtable_capacities: vec![32, 128],
            queries: 4,
            ..Params::paper()
        }
    }
}

/// One memtable-capacity measurement.
#[derive(Debug, Clone, Serialize)]
pub struct IngestRow {
    /// Memtable capacity (melodies per flush).
    pub memtable: usize,
    /// Wall-clock seconds for the whole ingest (inserts + flushes +
    /// compactions + final flush).
    pub secs: f64,
    /// Inserts per second, durable included.
    pub inserts_per_sec: f64,
    /// Segment flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Live segments at the end.
    pub segments: usize,
    /// Total durable bytes written (segments + manifests).
    pub bytes_written: u64,
    /// Amortized durable bytes per insert.
    pub bytes_per_insert: f64,
    /// Full-rewrite baseline cost divided by this row's cost.
    pub rewrite_ratio: f64,
    /// Whether a reopened store answered the probe queries bit-identically
    /// to the monolithic in-memory build.
    pub identical: bool,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Corpus size.
    pub melodies: usize,
    /// Estimated total bytes a rewrite-per-insert ingest would write.
    pub baseline_total_bytes: f64,
    /// Estimated amortized bytes per insert under rewrite-per-insert.
    pub baseline_bytes_per_insert: f64,
    /// One row per memtable capacity.
    pub rows: Vec<IngestRow>,
}

/// Byte-counting sink: measures serialized size without buffering it.
struct CountingSink(u64);

impl Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Serialized snapshot size of the first `prefix` melodies.
fn snapshot_bytes(db: &MelodyDatabase, config: &QbhConfig, prefix: usize) -> f64 {
    let entries: Vec<_> = db.entries()[..prefix]
        .iter()
        .map(|e| (e.song(), e.phrase(), e.melody().clone()))
        .collect();
    let prefix_db = MelodyDatabase::from_provenanced(entries);
    let mut sink = CountingSink(0);
    write_database(&mut sink, &prefix_db, config).expect("serialize prefix snapshot");
    sink.0 as f64
}

/// Total bytes of a rewrite-per-insert ingest, by trapezoid integration
/// over sampled prefix snapshot sizes (size is linear in the prefix).
fn rewrite_baseline_bytes(db: &MelodyDatabase, config: &QbhConfig) -> f64 {
    let n = db.len();
    let samples = 8usize.min(n);
    let points: Vec<(f64, f64)> = (1..=samples)
        .map(|s| {
            let prefix = (n * s).div_ceil(samples);
            (prefix as f64, snapshot_bytes(db, config, prefix))
        })
        .collect();
    let mut total = points[0].0 * points[0].1 / 2.0; // ramp-up from zero
    for pair in points.windows(2) {
        let ((x0, y0), (x1, y1)) = (pair[0], pair[1]);
        total += (x1 - x0) * (y0 + y1) / 2.0;
    }
    total
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: params.melodies.div_ceil(20),
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    let config = QbhConfig::default();
    let melodies = db.len().min(params.melodies);
    let baseline_total_bytes = rewrite_baseline_bytes(&db, &config);
    let baseline_bytes_per_insert = baseline_total_bytes / melodies as f64;

    // Probe queries answered by the monolithic build: the ingested store
    // must reproduce these bit for bit after a reload.
    let monolithic = QbhSystem::build(&db, &config);
    let hums: Vec<Vec<f64>> =
        generate_hums(&db, SingerProfile::good(), params.queries, params.seed)
            .into_iter()
            .map(|h| h.series)
            .collect();
    let expected: Vec<_> = hums.iter().map(|h| monolithic.query_series(h, 10)).collect();

    let mut rows = Vec::new();
    for &memtable in &params.memtable_capacities {
        let dir = ingest_dir(memtable);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create ingest dir");
        let options =
            StoreOptions { memtable_capacity: memtable, compact_at: params.compact_at };

        let started = Instant::now();
        let mut system =
            QbhSystem::try_create_store(&dir, &config, options).expect("create store");
        for entry in db.entries() {
            let series = entry.melody().to_time_series(config.samples_per_beat);
            system
                .try_insert_melody(entry.id(), entry.song(), entry.phrase(), &series)
                .expect("insert");
            system.maintain().expect("maintain");
        }
        system.flush().expect("final flush");
        let secs = started.elapsed().as_secs_f64();
        let stats = system.store_stats().expect("store-backed");
        drop(system);

        let reopened = QbhSystem::try_open_store(&dir).expect("reopen ingested store");
        let identical = reopened.len() == melodies
            && hums
                .iter()
                .zip(&expected)
                .all(|(h, want)| reopened.query_series(h, 10).matches == want.matches);

        let bytes_per_insert = stats.bytes_written as f64 / melodies as f64;
        rows.push(IngestRow {
            memtable,
            secs,
            inserts_per_sec: melodies as f64 / secs.max(1e-9),
            flushes: stats.flushes,
            compactions: stats.compactions,
            segments: stats.segments,
            bytes_written: stats.bytes_written,
            bytes_per_insert,
            rewrite_ratio: baseline_bytes_per_insert / bytes_per_insert.max(1e-9),
            identical,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    Output { melodies, baseline_total_bytes, baseline_bytes_per_insert, rows }
}

fn ingest_dir(memtable: usize) -> PathBuf {
    std::env::temp_dir()
        .join(format!("qbh-bench-ingest-{memtable}-{}", std::process::id()))
}

/// Renders the ingest table.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut table = TextTable::new(vec![
        "memtable",
        "inserts/sec",
        "flushes",
        "compactions",
        "segments",
        "MB written",
        "bytes/insert",
        "vs rewrite",
        "identical",
    ]);
    for row in &output.rows {
        table.row(vec![
            row.memtable.to_string(),
            fmt1(row.inserts_per_sec),
            row.flushes.to_string(),
            row.compactions.to_string(),
            row.segments.to_string(),
            format!("{:.1}", row.bytes_written as f64 / 1e6),
            fmt1(row.bytes_per_insert),
            format!("{:.0}x", row.rewrite_ratio),
            if row.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let text = format!(
        "Durable ingest cost ({} melodies; rewrite-per-insert baseline: {:.1} MB total, \
         {:.0} bytes/insert amortized)\n\n{}",
        output.melodies,
        output.baseline_total_bytes / 1e6,
        output.baseline_bytes_per_insert,
        table.render()
    );
    (text, table)
}

/// Shape checks: the store must beat the rewrite baseline decisively at
/// every memtable capacity, compaction must have bounded the segment
/// count, and the ingested store must answer identically to the
/// monolithic build.
pub fn check(output: &Output) -> Vec<String> {
    let mut failures = Vec::new();
    for row in &output.rows {
        if !row.identical {
            failures.push(format!(
                "memtable={}: reopened store deviates from the monolithic build",
                row.memtable
            ));
        }
        if row.rewrite_ratio < 2.0 {
            failures.push(format!(
                "memtable={}: only {:.1}x cheaper than rewrite-per-insert (expected >= 2x)",
                row.memtable, row.rewrite_ratio
            ));
        }
        if row.flushes < 2 {
            failures.push(format!(
                "memtable={}: {} flushes — the sweep never exercised segmented ingest",
                row.memtable, row.flushes
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_beats_the_rewrite_baseline_and_stays_identical() {
        let out = run(&Params::quick());
        assert_eq!(out.rows.len(), 2);
        let failures = check(&out);
        assert!(failures.is_empty(), "{failures:?}");
    }
}
