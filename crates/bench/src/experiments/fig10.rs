//! Figure 10 — "Performance comparisons with different query thresholds for
//! a large random walk database": candidates and page accesses over 50,000
//! random-walk series of length 128, indexed in 8 dimensions by an R\*-tree.

use serde::Serialize;

use hum_core::normal::NormalForm;
use hum_datasets::{generate, DatasetFamily};

use crate::experiments::sweep::{
    paper_widths, render_metric, run_sweep, verify_shape, MethodSweep, THRESHOLDS,
};
use crate::report::TextTable;

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Database size (paper: 50,000).
    pub series: usize,
    /// Series length (paper: 128).
    pub length: usize,
    /// Feature dimensions (paper: 8).
    pub dims: usize,
    /// Queries averaged per grid point (paper: 500 experiments).
    pub queries: usize,
    /// Warping widths to sweep.
    pub width_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Params { series: 50_000, length: 128, dims: 8, queries: 100, width_steps: 10, seed: 10 }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params { series: 3_000, queries: 10, width_steps: 4, ..Params::paper() }
    }
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Database size.
    pub series: usize,
    /// Queries averaged.
    pub queries: usize,
    /// The two method sweeps.
    pub sweeps: Vec<MethodSweep>,
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    // Queries are fresh random walks from a disjoint seed stream. The
    // paper's protocol subtracts the mean only (no variance scaling), which
    // keeps the nε thresholds highly selective on unit-step random walks.
    let normal = NormalForm::with_length(params.length);
    let database: Vec<Vec<f64>> =
        generate(DatasetFamily::RandomWalk, params.series, params.length, params.seed)
            .into_iter()
            .map(|s| normal.apply(&s))
            .collect();
    let queries: Vec<Vec<f64>> = generate(
        DatasetFamily::RandomWalk,
        params.queries,
        params.length,
        params.seed ^ 0xABCD_EF01,
    )
    .into_iter()
    .map(|s| normal.apply(&s))
    .collect();

    let widths: Vec<f64> = paper_widths().into_iter().take(params.width_steps).collect();
    let sweeps = run_sweep(&database, &queries, params.dims, &widths, &THRESHOLDS, 4096);
    Output { series: params.series, queries: params.queries, sweeps }
}

/// Renders both metrics.
pub fn render(output: &Output) -> (String, TextTable) {
    let candidates = render_metric(&output.sweeps, |p| p.candidates, "candidates");
    let pages = render_metric(&output.sweeps, |p| p.page_accesses, "page accesses");
    let text = format!(
        "Figure 10: random walk database ({} series, {} queries/point)\n\n\
         Candidates retrieved:\n{}\nPage accesses:\n{}",
        output.series,
        output.queries,
        candidates.render(),
        pages.render()
    );
    (text, candidates)
}

/// Qualitative checks (shared sweep shape).
pub fn check(output: &Output) -> Vec<String> {
    verify_shape(&output.sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_holds_the_figure_shape() {
        let out = run(&Params::quick());
        let failures = check(&out);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn new_paa_clearly_beats_keogh_at_selective_thresholds() {
        // The paper reports a 3–10x candidate advantage; assert a
        // conservative 1.5x at the selective threshold (ε = 0.2), where
        // neither method saturates at the database size.
        let out = run(&Params { series: 2_000, queries: 8, width_steps: 6, ..Params::paper() });
        let total = |method: &str| -> f64 {
            out.sweeps
                .iter()
                .find(|s| s.method == method)
                .expect("method present")
                .points
                .iter()
                .filter(|p| (p.threshold - 0.2).abs() < 1e-9)
                .map(|p| p.candidates)
                .sum()
        };
        let (new, keogh) = (total("New_PAA"), total("Keogh_PAA"));
        assert!(
            keogh >= 1.5 * new,
            "expected a clear advantage at eps=0.2: New_PAA {new:.1} vs Keogh_PAA {keogh:.1}"
        );
    }
}
