//! Table 3 — "The number of melodies correctly retrieved by poor singers
//! using different warping widths": rank bins at δ ∈ {0.05, 0.1, 0.2}.
//!
//! The paper's observation: widening the band from 0.05 to 0.1 rescues
//! poorly timed hums, but 0.2 over-warps — "when the warping width is too
//! large, some melodies that are very different will have a small DTW
//! distance too".

use serde::Serialize;

use hum_core::dtw::band_for_warping_width;
use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::{evaluate_timeseries_banded, generate_hums_audio};
use hum_qbh::system::{QbhConfig, QbhSystem};

use crate::report::TextTable;

/// The warping widths of the paper's Table 3.
pub const WIDTHS: [f64; 3] = [0.05, 0.1, 0.2];

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Songs in the songbook (phrases = songs × 20).
    pub songs: usize,
    /// Number of hum queries.
    pub queries: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale: 1000 phrases, 20 poor-singer hums.
    pub fn paper() -> Self {
        Params { songs: 50, queries: 20, seed: 77 }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params { songs: 10, queries: 8, seed: 77 }
    }
}

/// Experiment output: one rank-bin row per warping width.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Database size (phrases).
    pub melodies: usize,
    /// Queries issued.
    pub queries: usize,
    /// `bins[w][b]` = count in bin `b` at `WIDTHS[w]`.
    pub bins: Vec<[usize; 5]>,
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: params.songs,
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    let config = QbhConfig::default();
    let system = QbhSystem::build(&db, &config);
    let hums = generate_hums_audio(&db, SingerProfile::poor(), params.queries, params.seed);
    let bins = WIDTHS
        .iter()
        .map(|&w| {
            let band = band_for_warping_width(w, config.normal_length);
            evaluate_timeseries_banded(&system, &hums, band).as_row()
        })
        .collect();
    Output { melodies: db.len(), queries: params.queries, bins }
}

/// Renders the paper's table layout.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut table = TextTable::new(vec!["Rank", "delta = 0.05", "delta = 0.1", "delta = 0.2"]);
    let labels = ["1", "2-3", "4-5", "6-10", "10-"];
    for (i, label) in labels.iter().enumerate() {
        table.row(vec![
            label.to_string(),
            output.bins[0][i].to_string(),
            output.bins[1][i].to_string(),
            output.bins[2][i].to_string(),
        ]);
    }
    let text = format!(
        "Table 3: poor-singer retrieval by rank and warping width ({} melodies, {} hums)\n\n{}",
        output.melodies,
        output.queries,
        table.render()
    );
    (text, table)
}

/// Qualitative check of the paper's width trade-off: δ=0.1 retrieves at
/// least as many top-10 melodies as δ=0.05 (the 0.05→0.1 improvement), and
/// δ=0.2 does not beat δ=0.1 by more than sampling noise (the "tendency
/// disappears"). Returns the failed claims.
pub fn check(output: &Output) -> Vec<String> {
    let top10 = |row: &[usize; 5]| -> usize { row[..4].iter().sum() };
    let (w05, w10, w20) =
        (top10(&output.bins[0]), top10(&output.bins[1]), top10(&output.bins[2]));
    let mut failures = Vec::new();
    if w10 + 1 < w05 {
        failures.push(format!("top-10 fell from {w05} (δ=0.05) to {w10} (δ=0.1)"));
    }
    if w20 > w10 + 2 {
        failures.push(format!(
            "δ=0.2 ({w20}) improved clearly over δ=0.1 ({w10}); the paper's plateau is missing"
        ));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn top10(row: &[usize; 5]) -> usize {
        row[..4].iter().sum()
    }

    #[test]
    fn quick_run_produces_three_width_columns() {
        let out = run(&Params::quick());
        assert_eq!(out.bins.len(), 3);
        for row in &out.bins {
            assert_eq!(row.iter().sum::<usize>(), out.queries);
        }
    }

    #[test]
    fn wider_band_helps_poor_singers_up_to_a_point() {
        // The paper's tendency: δ=0.1 retrieves at least as many top-10
        // melodies as δ=0.05 for poorly timed hums. (The drop at 0.2 is a
        // population-level effect; with quick-scale queries we assert only
        // the first half of the tendency.)
        let out = run(&Params { songs: 15, queries: 12, seed: 77 });
        assert!(
            top10(&out.bins[1]) + 1 >= top10(&out.bins[0]),
            "δ=0.1 ({:?}) should be no worse than δ=0.05 ({:?})",
            out.bins[1],
            out.bins[0]
        );
    }

    #[test]
    fn render_mentions_all_widths() {
        let out = run(&Params::quick());
        let (text, _) = render(&out);
        for w in ["0.05", "0.1", "0.2"] {
            assert!(text.contains(w));
        }
    }
}
