//! Figure 6 — "Mean value of the tightness of lower bound, using LB,
//! New_PAA and Keogh_PAA for different time series data sets".
//!
//! Protocol (paper §5.2): series of length 256, warping width 0.1,
//! dimensionality reduced from 256 to 4 by PAA, 50 series per dataset with
//! the mean subtracted, tightness averaged over all pairs.

use serde::Serialize;

use hum_core::dtw::band_for_warping_width;
use hum_core::normal::NormalForm;
use hum_core::tightness::{envelope_tightness, transform_tightness};
use hum_core::transform::paa::{KeoghPaa, NewPaa};
use hum_datasets::{generate, ALL_FAMILIES};

use crate::report::{fmt3, TextTable};

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Series length (paper: 256).
    pub length: usize,
    /// Reduced dimensionality (paper: 4).
    pub dims: usize,
    /// Warping width δ (paper: 0.1).
    pub warping_width: f64,
    /// Series sampled per dataset (paper: 50).
    pub series_per_dataset: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Params { length: 256, dims: 4, warping_width: 0.1, series_per_dataset: 50, seed: 6 }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params { series_per_dataset: 10, ..Params::paper() }
    }
}

/// Mean tightness of the three methods on one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetRow {
    /// 1-based Fig 6 index.
    pub index: usize,
    /// Dataset name.
    pub name: String,
    /// Full-envelope LB (no reduction — the sanity ceiling).
    pub lb: f64,
    /// The paper's New_PAA.
    pub new_paa: f64,
    /// Keogh's original PAA reduction.
    pub keogh_paa: f64,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Per-dataset rows in figure order.
    pub rows: Vec<DatasetRow>,
    /// Mean of `new_paa / keogh_paa` over datasets where both are positive —
    /// the paper reports "approximately 2 times ... on average".
    pub mean_improvement_ratio: f64,
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    let band = band_for_warping_width(params.warping_width, params.length);
    let new_paa = NewPaa::new(params.length, params.dims);
    let keogh_paa = KeoghPaa::new(params.length, params.dims);
    let normal = NormalForm::with_length(params.length);

    let mut rows = Vec::with_capacity(ALL_FAMILIES.len());
    for &family in ALL_FAMILIES {
        let series: Vec<Vec<f64>> =
            generate(family, params.series_per_dataset, params.length, params.seed)
                .into_iter()
                .map(|s| normal.apply(&s))
                .collect();
        let mut sums = [0.0f64; 3];
        let mut count = 0usize;
        for i in 0..series.len() {
            for j in (i + 1)..series.len() {
                let (x, y) = (&series[i], &series[j]);
                sums[0] += envelope_tightness(x, y, band);
                sums[1] += transform_tightness(&new_paa, x, y, band);
                sums[2] += transform_tightness(&keogh_paa, x, y, band);
                count += 1;
            }
        }
        let n = count.max(1) as f64;
        rows.push(DatasetRow {
            index: family.figure_index(),
            name: family.name().to_string(),
            lb: sums[0] / n,
            new_paa: sums[1] / n,
            keogh_paa: sums[2] / n,
        });
    }
    // Ratio of mean tightnesses across all datasets — the paper's
    // "approximately 2 times that of Keogh_PAA on average for all datasets".
    let new_mean: f64 = rows.iter().map(|r| r.new_paa).sum::<f64>() / rows.len() as f64;
    let keogh_mean: f64 = rows.iter().map(|r| r.keogh_paa).sum::<f64>() / rows.len() as f64;
    let mean_improvement_ratio = if keogh_mean > 1e-12 { new_mean / keogh_mean } else { 0.0 };
    Output { rows, mean_improvement_ratio }
}

/// Renders the figure as a table of series.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut table = TextTable::new(vec!["#", "Dataset", "LB", "New_PAA", "Keogh_PAA"]);
    for row in &output.rows {
        table.row(vec![
            row.index.to_string(),
            row.name.clone(),
            fmt3(row.lb),
            fmt3(row.new_paa),
            fmt3(row.keogh_paa),
        ]);
    }
    let text = format!(
        "Figure 6: mean tightness of lower bound per dataset (n=256, N=4, delta=0.1)\n\n{}\nMean New_PAA/Keogh_PAA improvement ratio: {:.2}x\n",
        table.render(),
        output.mean_improvement_ratio
    );
    (text, table)
}

/// Checks the paper's qualitative claims on an output; returns the failed
/// claims (empty = all hold). Used by tests and the repro binary.
pub fn verify_shape(output: &Output) -> Vec<String> {
    let mut failures = Vec::new();
    for row in &output.rows {
        if row.lb + 1e-9 < row.new_paa {
            failures.push(format!("{}: LB below New_PAA", row.name));
        }
        if row.new_paa + 1e-9 < row.keogh_paa {
            failures.push(format!("{}: New_PAA below Keogh_PAA", row.name));
        }
    }
    if output.mean_improvement_ratio < 1.2 {
        failures.push(format!(
            "mean improvement ratio {:.2} is not clearly above 1",
            output.mean_improvement_ratio
        ));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_24_datasets_and_holds_orderings() {
        let out = run(&Params::quick());
        assert_eq!(out.rows.len(), 24);
        for row in &out.rows {
            for v in [row.lb, row.new_paa, row.keogh_paa] {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", row.name);
            }
        }
        let failures = verify_shape(&out);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn render_lists_every_dataset() {
        let out = run(&Params { series_per_dataset: 4, ..Params::paper() });
        let (text, _) = render(&out);
        assert!(text.contains("Sunspot") && text.contains("Random walk"));
    }
}
