//! Figure 8 — "The number of candidates to be retrieved with different
//! query thresholds for the Beatles's melody database": New_PAA vs
//! Keogh_PAA candidate counts across warping widths 0.02 → 0.2 at
//! ε ∈ {0.2, 0.8}, on the 1000-phrase songbook.

use serde::Serialize;

use hum_core::normal::NormalForm;
use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::generate_hums;

use crate::experiments::sweep::{
    paper_widths, render_metric, run_sweep, verify_shape, MethodSweep, THRESHOLDS,
};
use crate::report::TextTable;

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Songs in the songbook (phrases = songs × 20; paper: 50 → 1000).
    pub songs: usize,
    /// Normal-form length.
    pub length: usize,
    /// Feature dimensions.
    pub dims: usize,
    /// Number of hum queries averaged per grid point.
    pub queries: usize,
    /// Warping widths to sweep.
    pub width_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Params { songs: 50, length: 128, dims: 8, queries: 50, width_steps: 10, seed: 8 }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params { songs: 10, queries: 8, width_steps: 4, ..Params::paper() }
    }
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Database size.
    pub melodies: usize,
    /// Queries averaged.
    pub queries: usize,
    /// The two method sweeps.
    pub sweeps: Vec<MethodSweep>,
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: params.songs,
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    let normal = NormalForm::with_length(params.length);
    let database: Vec<Vec<f64>> =
        db.entries().iter().map(|e| normal.apply(&e.melody().to_time_series(4))).collect();
    let queries: Vec<Vec<f64>> =
        generate_hums(&db, SingerProfile::good(), params.queries, params.seed)
            .into_iter()
            .map(|h| normal.apply(&h.series))
            .collect();

    let widths: Vec<f64> = paper_widths().into_iter().take(params.width_steps).collect();
    let sweeps = run_sweep(&database, &queries, params.dims, &widths, &THRESHOLDS, 4096);
    Output { melodies: db.len(), queries: params.queries, sweeps }
}

/// Renders the figure.
pub fn render(output: &Output) -> (String, TextTable) {
    let table = render_metric(&output.sweeps, |p| p.candidates, "candidates");
    let text = format!(
        "Figure 8: candidates retrieved vs warping width, music database ({} melodies, {} hums/point)\n\n{}",
        output.melodies,
        output.queries,
        table.render()
    );
    (text, table)
}

/// Qualitative checks (delegates to the shared sweep checks).
pub fn check(output: &Output) -> Vec<String> {
    verify_shape(&output.sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_holds_the_figure_shape() {
        let out = run(&Params::quick());
        assert_eq!(out.melodies, 200);
        let failures = check(&out);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn candidate_counts_are_bounded_by_database_size() {
        let out = run(&Params::quick());
        for sweep in &out.sweeps {
            for p in &sweep.points {
                assert!(p.candidates <= out.melodies as f64);
            }
        }
    }
}
