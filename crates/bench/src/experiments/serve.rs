//! Query-serving latency and throughput: closed-loop multi-connection load
//! against the TCP server, swept over worker-pool sizes *and* corpus shard
//! counts on the Fig-9-scale music workload.
//!
//! Each connection is its own OS thread running a blocking
//! [`hum_server::Client`] that issues k-NN requests back to back and times
//! every round trip. The serving contract mirrors the batch layer's: worker
//! count and shard count change *only* wall-clock numbers — every served
//! match list is compared bit for bit against the in-process *monolithic*
//! baseline, and the shape check fails if any request deviates, is
//! rejected, or errors. The baseline is deliberately the single-shard
//! system, so the committed results double as evidence for the sharding
//! bit-identity contract.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use hum_core::engine::QueryRequest;
use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::generate_hums;
use hum_qbh::system::{QbhConfig, QbhMatch, QbhSystem};
use hum_server::{Client, QueryOptions, Server, ServerConfig};

use crate::report::{fmt1, fmt3, TextTable};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Database melodies (Fig 9 scale: 35,000).
    pub melodies: usize,
    /// Concurrent client connections (closed loop: each has at most one
    /// request in flight).
    pub connections: usize,
    /// Requests each connection issues back to back.
    pub queries_per_conn: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Worker-pool sizes to sweep.
    pub worker_counts: Vec<usize>,
    /// Corpus shard counts to sweep (1 = the monolithic engine).
    pub shard_counts: Vec<usize>,
    /// Admission-queue depth.
    pub queue_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Params {
            melodies: 35_000,
            connections: 8,
            queries_per_conn: 50,
            k: 10,
            worker_counts: vec![1, 2, 4, 8],
            shard_counts: vec![1, 2, 4],
            queue_depth: 256,
            seed: 29,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params {
            melodies: 2_000,
            connections: 4,
            queries_per_conn: 8,
            worker_counts: vec![1, 4],
            shard_counts: vec![1, 2],
            ..Params::paper()
        }
    }
}

/// One worker-count measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ServeRow {
    /// Corpus shard count serving this row.
    pub shards: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Wall-clock seconds for the whole load.
    pub secs: f64,
    /// Served requests per second.
    pub qps: f64,
    /// Median round-trip latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile round-trip latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile round-trip latency, milliseconds.
    pub p99_ms: f64,
    /// Requests rejected by admission control (a closed loop within the
    /// queue depth must see zero).
    pub rejected: usize,
    /// Whether every served match list was bit-identical to the in-process
    /// baseline.
    pub identical: bool,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Database size.
    pub melodies: usize,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests per connection.
    pub queries_per_conn: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Hardware threads available during the run.
    pub hardware_threads: usize,
    /// One row per worker count.
    pub rows: Vec<ServeRow>,
}

/// Nearest-rank percentile of an ascending-sorted latency list, in ms.
fn percentile_ms(sorted_nanos: &[u64], pct: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted_nanos.len() as f64).ceil() as usize;
    sorted_nanos[rank.clamp(1, sorted_nanos.len()) - 1] as f64 / 1e6
}

fn matches_bit_identical(served: &[hum_server::ServiceMatch], local: &[QbhMatch]) -> bool {
    served.len() == local.len()
        && served.iter().zip(local).all(|(s, l)| {
            (s.id, s.song, s.phrase) == (l.id, l.song, l.phrase)
                && s.distance.to_bits() == l.distance.to_bits()
        })
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: params.melodies.div_ceil(20),
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let total_queries = params.connections * params.queries_per_conn;
    let hums: Vec<Vec<f64>> =
        generate_hums(&db, SingerProfile::good(), total_queries, params.seed)
            .into_iter()
            .map(|h| h.series)
            .collect();

    // In-process baseline, one result set per request. The server defaults
    // omitted bands to the system's configured width, so pin the same band.
    let band = system.band();
    let baseline: Vec<Vec<QbhMatch>> = hums
        .iter()
        .map(|h| {
            system
                .try_query_request(h, QueryRequest::knn(params.k).with_band(band))
                .map(|(results, _)| results.matches)
                .unwrap_or_default()
        })
        .collect();
    let hums = Arc::new(hums);
    let baseline = Arc::new(baseline);

    let mut rows = Vec::new();
    // The monolithic system that produced the baseline serves the shards=1
    // rounds itself; other shard counts rebuild from the same database (the
    // build is deterministic, so features — and answers — are identical).
    let mut monolithic = Some(system);
    for &shards in &params.shard_counts {
        let mut system = Some(if shards == 1 {
            monolithic.take().expect("shard_counts lists 1 at most once")
        } else {
            QbhSystem::build(&db, &QbhConfig { shards, ..QbhConfig::default() })
        });
        for &workers in &params.worker_counts {
            let config = ServerConfig {
                workers,
                queue_depth: params.queue_depth,
                ..ServerConfig::default()
            };
            let server = Server::start(
                system.take().expect("system is handed back between rounds"),
                "127.0.0.1:0",
                config,
            )
            .expect("bind an ephemeral loopback port");
            let addr = server.local_addr();

            let started = Instant::now();
            let threads: Vec<_> = (0..params.connections)
                .map(|conn| {
                    let hums = Arc::clone(&hums);
                    let baseline = Arc::clone(&baseline);
                    let (k, per_conn) = (params.k, params.queries_per_conn);
                    std::thread::spawn(move || {
                        let mut latencies = Vec::with_capacity(per_conn);
                        let mut rejected = 0usize;
                        let mut identical = true;
                        let mut client = Client::connect(addr).expect("connect");
                        for j in 0..per_conn {
                            let i = conn * per_conn + j;
                            let t0 = Instant::now();
                            match client.knn(&hums[i], k, &QueryOptions::default()) {
                                Ok(reply) => {
                                    latencies.push(t0.elapsed().as_nanos() as u64);
                                    identical &=
                                        matches_bit_identical(&reply.matches, &baseline[i]);
                                }
                                Err(hum_server::ClientError::Overloaded(_)) => rejected += 1,
                                Err(e) => panic!("serving failed mid-load: {e}"),
                            }
                        }
                        (latencies, rejected, identical)
                    })
                })
                .collect();

            let mut latencies = Vec::with_capacity(total_queries);
            let mut rejected = 0usize;
            let mut identical = true;
            for thread in threads {
                let (lat, rej, ident) = thread.join().expect("load thread");
                latencies.extend(lat);
                rejected += rej;
                identical &= ident;
            }
            let secs = started.elapsed().as_secs_f64();
            latencies.sort_unstable();

            rows.push(ServeRow {
                shards,
                workers,
                secs,
                qps: latencies.len() as f64 / secs.max(1e-9),
                p50_ms: percentile_ms(&latencies, 50.0),
                p95_ms: percentile_ms(&latencies, 95.0),
                p99_ms: percentile_ms(&latencies, 99.0),
                rejected,
                identical,
            });
            system =
                Some(server.shutdown().expect("graceful shutdown returns the system"));
        }
    }

    Output {
        melodies: db.len().min(params.melodies),
        connections: params.connections,
        queries_per_conn: params.queries_per_conn,
        k: params.k,
        hardware_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        rows,
    }
}

/// Renders the latency/throughput table.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut table = TextTable::new(vec![
        "shards",
        "workers",
        "secs",
        "queries/sec",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "rejected",
        "identical",
    ]);
    for row in &output.rows {
        table.row(vec![
            row.shards.to_string(),
            row.workers.to_string(),
            fmt3(row.secs),
            fmt1(row.qps),
            fmt3(row.p50_ms),
            fmt3(row.p95_ms),
            fmt3(row.p99_ms),
            row.rejected.to_string(),
            if row.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let text = format!(
        "Query serving over TCP loopback ({} melodies, {} connections x {} k-NN \
         requests, k={}, {} hardware threads)\n\n{}",
        output.melodies,
        output.connections,
        output.queries_per_conn,
        output.k,
        output.hardware_threads,
        table.render()
    );
    (text, table)
}

/// Shape checks: bit-identity and zero rejections always; scaling only
/// where the hardware can express it.
pub fn check(output: &Output) -> Vec<String> {
    let mut failures = Vec::new();
    for row in &output.rows {
        if !row.identical {
            failures.push(format!(
                "shards={} workers={}: served matches deviate from the in-process \
                 monolithic baseline",
                row.shards, row.workers
            ));
        }
        if row.rejected > 0 {
            failures.push(format!(
                "shards={} workers={}: {} rejections from a closed loop within the \
                 queue depth",
                row.shards, row.workers, row.rejected
            ));
        }
        if row.p50_ms > row.p99_ms {
            failures.push(format!(
                "shards={} workers={}: p50 above p99",
                row.shards, row.workers
            ));
        }
    }
    let qps_at = |workers: usize, shards: usize| {
        output
            .rows
            .iter()
            .find(|r| r.workers == workers && r.shards == shards)
            .map(|r| r.qps)
    };
    // Scaling gates only run where the hardware can express parallelism; a
    // 1-core CI box serializes everything and only the p99 numbers move
    // (the sharded scatter shortens the longest index walks).
    if output.hardware_threads >= 8 {
        if let (Some(one), Some(eight)) = (qps_at(1, 1), qps_at(8, 1)) {
            if eight < one * 1.5 {
                failures.push(format!(
                    "8 workers on {}-thread hardware only reached {:.2}x the 1-worker \
                     throughput (expected >= 1.5x)",
                    output.hardware_threads,
                    eight / one.max(1e-9)
                ));
            }
        }
        // The tentpole gate: 8 workers over >= 4 shards must at least
        // double the single-shard throughput at the same worker count.
        let best_sharded = output
            .rows
            .iter()
            .filter(|r| r.workers == 8 && r.shards >= 4)
            .map(|r| r.qps)
            .fold(None::<f64>, |best, q| Some(best.map_or(q, |b| b.max(q))));
        if let (Some(mono), Some(sharded)) = (qps_at(8, 1), best_sharded) {
            if sharded < mono * 2.0 {
                failures.push(format!(
                    "8 workers over >= 4 shards on {}-thread hardware only reached \
                     {:.2}x the single-shard throughput (expected >= 2x)",
                    output.hardware_threads,
                    sharded / mono.max(1e-9)
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_bit_identical_and_never_rejects() {
        let out = run(&Params {
            melodies: 400,
            connections: 3,
            queries_per_conn: 4,
            worker_counts: vec![1, 4],
            shard_counts: vec![1, 3],
            ..Params::quick()
        });
        assert_eq!(out.rows.len(), 4, "worker counts x shard counts");
        for row in &out.rows {
            // `identical` is checked against the *monolithic* baseline, so
            // the shards=3 rows passing is the end-to-end bit-identity
            // contract, not a tautology.
            assert!(row.identical, "{row:?}");
            assert_eq!(row.rejected, 0, "{row:?}");
            assert!(row.p50_ms > 0.0 && row.p50_ms <= row.p99_ms, "{row:?}");
        }
    }

    #[test]
    fn render_reports_every_row_and_percentiles_are_ordered() {
        let out = run(&Params {
            melodies: 400,
            connections: 2,
            queries_per_conn: 3,
            worker_counts: vec![2],
            shard_counts: vec![2],
            ..Params::quick()
        });
        let (text, table) = render(&out);
        assert!(text.contains("queries/sec"));
        assert_eq!(table.to_csv().lines().count(), out.rows.len() + 1);
        assert!(out.rows[0].p95_ms <= out.rows[0].p99_ms);
    }
}
