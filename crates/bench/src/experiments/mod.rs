//! One module per table/figure of the paper's evaluation section.
//!
//! | Module | Reproduces | Paper reference |
//! |---|---|---|
//! | [`table2`] | Retrieval quality, time series vs contour, good singers | Table 2 |
//! | [`table3`] | Retrieval quality vs warping width, poor singers | Table 3 |
//! | [`fig6`] | Tightness of lower bound across 24 datasets | Figure 6 |
//! | [`fig7`] | Tightness vs warping width, five methods, random walk | Figure 7 |
//! | [`fig8`] | Candidates vs warping width, 1000-melody music DB | Figure 8 |
//! | [`fig9`] | Candidates and page accesses, 35,000-melody MIDI DB | Figure 9 |
//! | [`fig10`] | Candidates and page accesses, 50,000 random walks | Figure 10 |
//!
//! [`sweep`] holds the shared candidate/page-access sweep machinery used by
//! figures 8–10, [`extras`] runs the design-choice ablations listed in
//! DESIGN.md (backends, LB second filter, build strategy, transform
//! pruning), [`throughput`] measures batched-query throughput versus
//! worker-thread count and chunk size with a bit-identity check against the
//! sequential baseline, [`obs`] re-runs the Figure-9 workload with
//! per-query tracing on, printing the full cascade trajectory (candidates →
//! envelope-LB pruned → `LB_Improved` pruned → early-abandoned → verified)
//! from the library's own observability layer, and [`serve`] drives the TCP
//! query server with a closed-loop multi-connection load generator,
//! reporting p50/p95/p99 latency and throughput versus worker-pool size.
//! [`stream`] streams hums into server-side sessions chunk by chunk,
//! reporting refinement latency and top-k churn versus hum length with a
//! per-prefix bit-identity check against in-process one-shot queries.
//! [`kernels`] microbenchmarks the kernel layer (envelope LB, `LB_Improved`,
//! banded DTW, f32 prefilter) against naive sequential references, with
//! bit-identity and conservativeness enforced by its shape check.
//! [`ingest`] measures durable bytes per insert and throughput for the
//! segmented store against the full-snapshot-rewrite baseline, with a
//! reload bit-identity check. [`scale`] streams synthetic corpora across
//! size decades (up to 10^6 melodies) and compares the build-time transform
//! planner against every fixed transform on build cost, candidate ratio,
//! and query tail latency.

pub mod extras;
pub mod fig10;
pub mod ingest;
pub mod kernels;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod obs;
pub mod scale;
pub mod serve;
pub mod stream;
pub mod sweep;
pub mod table2;
pub mod table3;
pub mod throughput;
