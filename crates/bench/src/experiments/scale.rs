//! Million-melody scale harness: build cost, index footprint, candidate
//! ratio, and query latency per corpus-size decade, for the build-time
//! transform planner (`auto`) against every fixed transform family.
//!
//! Corpora are synthetic pitch series streamed from `hum-datasets`
//! generators (four families interleaved round-robin so no single decade is
//! homogeneous), inserted one at a time and dropped — the only O(n) state
//! is the index itself, never the raw corpus. The planner sees only the
//! stream's seeded prefix, exactly as a store ingest would. Queries are
//! deterministic sinusoidal perturbations of sampled corpus series, so
//! every variant at a decade answers the identical workload.
//!
//! The shape check enforces the planner's contract: the chosen transform's
//! measured mean tightness is at least that of every rejected candidate on
//! the same sample (ties broken by the cost model), at every decade.

use std::time::Instant;

use serde::Serialize;

use hum_core::obs::MetricsSink;
use hum_core::plan::{PlannerOptions, TransformPlan};
use hum_datasets::{generate_iter, DatasetFamily};
use hum_qbh::system::{QbhConfig, QbhSystem, TransformChoice, TransformKind};

use crate::report::{fmt3, TextTable};

/// Stream composition: four qualitatively different generator families,
/// interleaved so smooth, chaotic, periodic, and random-walk melodies all
/// appear in every prefix (including the planner's sample).
const STREAM_FAMILIES: [DatasetFamily; 4] = [
    DatasetFamily::RandomWalk,
    DatasetFamily::Sunspot,
    DatasetFamily::Chaotic,
    DatasetFamily::Tide,
];

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Corpus sizes (one row group per decade).
    pub decades: Vec<usize>,
    /// Queries per (decade, transform) cell.
    pub queries: usize,
    /// Raw pitch-series length before normal-form resampling.
    pub series_len: usize,
    /// Corpus prefix handed to the planner (and mined for query bases).
    pub plan_sample: usize,
    /// RNG seed for the melody stream.
    pub seed: u64,
}

impl Params {
    /// Paper scale: 10^4 through 10^6 melodies. The query count is modest
    /// because at 10^6 melodies a single k-NN verifies hundreds of
    /// thousands of candidates — the decade sweep, not per-cell sampling
    /// depth, is what this harness buys.
    pub fn paper() -> Self {
        Params {
            decades: vec![10_000, 100_000, 1_000_000],
            queries: 24,
            series_len: 192,
            plan_sample: 256,
            seed: 2003,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params { decades: vec![1_000, 4_000], queries: 16, plan_sample: 64, ..Params::paper() }
    }
}

/// One measured (decade, transform) cell.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleRow {
    /// Corpus size.
    pub melodies: usize,
    /// Transform label (`auto` or a fixed family).
    pub transform: String,
    /// Seconds spent planning (zero for fixed transforms).
    pub plan_secs: f64,
    /// Seconds streaming all melodies into the index (planning excluded).
    pub build_secs: f64,
    /// Estimated resident index footprint: per-entry features, normal form,
    /// and bookkeeping. Analytic, since the corpus itself is never held.
    pub est_index_mb: f64,
    /// Mean fraction of the corpus surfaced as index candidates per query.
    pub candidate_ratio: f64,
    /// Queries per second over the cell's workload.
    pub qps: f64,
    /// Median query latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile query latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile query latency in milliseconds.
    pub p99_ms: f64,
}

/// Flattened plan evidence for one measured candidate (the core types do
/// not serialize; the JSON payload carries this mirror instead).
#[derive(Debug, Clone, Serialize)]
pub struct PlanCandidateRow {
    /// Family name (`new_paa`, `keogh_paa`, `dft`, `dwt`).
    pub family: String,
    /// Reduced dimension measured.
    pub dims: usize,
    /// Mean feature-space tightness over the sampled pairs.
    pub mean_tightness: f64,
    /// Estimated candidate ratio under the cost model.
    pub est_candidate_ratio: f64,
    /// Cost-model score (lower is better).
    pub score: f64,
    /// Whether the planner chose this candidate.
    pub chosen: bool,
}

/// The planner's decision at one decade.
#[derive(Debug, Clone, Serialize)]
pub struct PlanReport {
    /// Corpus size the plan was drawn at.
    pub melodies: usize,
    /// Chosen family name.
    pub family: String,
    /// Chosen reduced dimension.
    pub dims: usize,
    /// Chosen candidate's mean tightness.
    pub mean_tightness: f64,
    /// Series actually measured.
    pub sample_len: usize,
    /// Ordered pairs actually measured.
    pub pairs: usize,
    /// Every candidate the planner weighed.
    pub candidates: Vec<PlanCandidateRow>,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// One row per (decade, transform) cell.
    pub rows: Vec<ScaleRow>,
    /// One plan per decade (the `auto` cells' evidence).
    pub plans: Vec<PlanReport>,
}

/// Streams `n` melodies, round-robin across [`STREAM_FAMILIES`], without
/// materializing the corpus. Deterministic in `(n-prefix, seed)`: melody
/// `i` is identical at every corpus size with `i < n`.
fn melody_stream(n: usize, len: usize, seed: u64) -> impl Iterator<Item = Vec<f64>> {
    let per_family = n.div_ceil(STREAM_FAMILIES.len());
    let mut streams: Vec<_> =
        STREAM_FAMILIES.iter().map(|&f| generate_iter(f, per_family, len, seed)).collect();
    (0..n).map(move |i| {
        streams[i % STREAM_FAMILIES.len()].next().expect("stream sized to cover n")
    })
}

/// Deterministic query workload: corpus series from the planner's sample
/// prefix, perturbed by a small sinusoid — close enough to retrieve, far
/// enough to exercise the lower-bound cascade.
fn make_queries(sample: &[Vec<f64>], queries: usize) -> Vec<Vec<f64>> {
    (0..queries)
        .map(|q| {
            let base = &sample[(q * 7 + 3) % sample.len()];
            base.iter()
                .enumerate()
                .map(|(t, &v)| v + 0.8 * (0.7 * t as f64 + q as f64).sin())
                .collect()
        })
        .collect()
}

fn plan_report(plan: &TransformPlan, melodies: usize) -> PlanReport {
    PlanReport {
        melodies,
        family: plan.family.name().to_string(),
        dims: plan.dims,
        mean_tightness: plan.mean_tightness,
        sample_len: plan.sample_len,
        pairs: plan.pairs,
        candidates: plan
            .candidates
            .iter()
            .map(|c| PlanCandidateRow {
                family: c.family.name().to_string(),
                dims: c.dims,
                mean_tightness: c.mean_tightness,
                est_candidate_ratio: c.est_candidate_ratio,
                score: c.score,
                chosen: c.family == plan.family && c.dims == plan.dims,
            })
            .collect(),
    }
}

/// Builds one (decade, transform) cell and measures its query workload.
fn run_cell(
    n: usize,
    label: &str,
    choice: TransformChoice,
    sample: &[Vec<f64>],
    queries: &[Vec<f64>],
    params: &Params,
) -> (ScaleRow, Option<TransformPlan>) {
    let config = QbhConfig { transform: choice, ..QbhConfig::default() };

    let plan_started = Instant::now();
    let mut system = QbhSystem::try_build_live(&config, sample, &MetricsSink::Disabled)
        .expect("plan and build empty system");
    let plan_secs = system.plan().map_or(0.0, |_| plan_started.elapsed().as_secs_f64());

    let build_started = Instant::now();
    for (i, series) in melody_stream(n, params.series_len, params.seed).enumerate() {
        system
            .try_insert_melody(i as u64, i, 0, &series)
            .expect("insert streamed melody");
        // `series` drops here: resident state is the index, not the corpus.
    }
    let build_secs = build_started.elapsed().as_secs_f64();
    assert_eq!(system.len(), n, "stream fully indexed");

    let resolved = *system.config();
    let per_entry =
        (resolved.feature_dims * 8 + resolved.normal_length * 8 + 32) as f64;
    let est_index_mb = n as f64 * per_entry / 1e6;

    let mut latencies_ms = Vec::with_capacity(queries.len());
    let mut candidates = 0u64;
    let query_started = Instant::now();
    for q in queries {
        let t = Instant::now();
        let results = system.query_series(q, 10);
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        candidates += results.stats.index.candidates;
    }
    let query_secs = query_started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| {
        let idx = ((latencies_ms.len() as f64 - 1.0) * p).round() as usize;
        latencies_ms[idx]
    };

    let row = ScaleRow {
        melodies: n,
        transform: label.to_string(),
        plan_secs,
        build_secs,
        est_index_mb,
        candidate_ratio: candidates as f64 / (n as f64 * queries.len() as f64),
        qps: queries.len() as f64 / query_secs.max(1e-9),
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
    };
    (row, system.plan().cloned())
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    // `auto` first, then every family the planner could have picked. Svd is
    // excluded on both sides: its data-fitted basis is not plan-representable
    // and the incremental engine refuses it for the same reason.
    let variants: Vec<(&str, TransformChoice)> = vec![
        ("auto", TransformChoice::Auto(PlannerOptions::default())),
        ("new_paa", TransformKind::NewPaa.into()),
        ("keogh_paa", TransformKind::KeoghPaa.into()),
        ("dft", TransformKind::Dft.into()),
        ("dwt", TransformKind::Dwt.into()),
    ];

    let mut rows = Vec::new();
    let mut plans = Vec::new();
    for &n in &params.decades {
        let sample: Vec<Vec<f64>> =
            melody_stream(n, params.series_len, params.seed).take(params.plan_sample).collect();
        let queries = make_queries(&sample, params.queries);
        for (label, choice) in &variants {
            let (row, plan) = run_cell(n, label, *choice, &sample, &queries, params);
            rows.push(row);
            if let Some(plan) = plan {
                plans.push(plan_report(&plan, n));
            }
        }
    }
    Output { rows, plans }
}

/// Renders the scale table.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut table = TextTable::new(vec![
        "melodies",
        "transform",
        "plan s",
        "build s",
        "est MB",
        "cand ratio",
        "qps",
        "p50 ms",
        "p95 ms",
        "p99 ms",
    ]);
    for row in &output.rows {
        table.row(vec![
            row.melodies.to_string(),
            row.transform.clone(),
            format!("{:.2}", row.plan_secs),
            format!("{:.2}", row.build_secs),
            format!("{:.1}", row.est_index_mb),
            fmt3(row.candidate_ratio),
            format!("{:.1}", row.qps),
            fmt3(row.p50_ms),
            fmt3(row.p95_ms),
            fmt3(row.p99_ms),
        ]);
    }
    let mut text = String::from(
        "Scale harness: adaptive transform planner (auto) vs fixed transforms\n\n",
    );
    text.push_str(&table.render());
    for plan in &output.plans {
        text.push_str(&format!(
            "\nPlan @ {} melodies: {} d={} (tightness {:.4}; {} series / {} pairs)\n",
            plan.melodies, plan.family, plan.dims, plan.mean_tightness, plan.sample_len, plan.pairs
        ));
        for c in &plan.candidates {
            text.push_str(&format!(
                "  {} {:<9} d={:<3} tightness {:.4}  est-candidates {:.4}  score {:.4}\n",
                if c.chosen { "->" } else { "  " },
                c.family,
                c.dims,
                c.mean_tightness,
                c.est_candidate_ratio,
                c.score,
            ));
        }
    }
    (text, table)
}

/// Shape checks: every decade planned, the chosen candidate's tightness
/// dominates every rejected one (the planner's selection contract), and
/// every cell produced a sane workload (candidate ratio in [0, 1], queries
/// actually ran).
pub fn check(output: &Output) -> Vec<String> {
    let mut failures = Vec::new();
    let decades: std::collections::BTreeSet<usize> =
        output.rows.iter().map(|r| r.melodies).collect();
    for &n in &decades {
        match output.plans.iter().find(|p| p.melodies == n) {
            None => failures.push(format!("{n} melodies: no auto plan recorded")),
            Some(plan) => {
                for c in plan.candidates.iter().filter(|c| !c.chosen) {
                    if plan.mean_tightness + 1e-12 < c.mean_tightness {
                        failures.push(format!(
                            "{n} melodies: chosen {} d={} tightness {:.6} below rejected {} d={} \
                             ({:.6})",
                            plan.family,
                            plan.dims,
                            plan.mean_tightness,
                            c.family,
                            c.dims,
                            c.mean_tightness
                        ));
                    }
                }
            }
        }
    }
    for row in &output.rows {
        if !(0.0..=1.0).contains(&row.candidate_ratio) {
            failures.push(format!(
                "{} melodies / {}: candidate ratio {:.3} outside [0, 1]",
                row.melodies, row.transform, row.candidate_ratio
            ));
        }
        if row.qps <= 0.0 || !row.qps.is_finite() {
            failures.push(format!(
                "{} melodies / {}: degenerate qps {}",
                row.melodies, row.transform, row.qps
            ));
        }
        if row.p50_ms > row.p99_ms + 1e-9 {
            failures.push(format!(
                "{} melodies / {}: p50 {:.3} ms exceeds p99 {:.3} ms",
                row.melodies, row.transform, row.p50_ms, row.p99_ms
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params { decades: vec![200, 500], queries: 6, plan_sample: 24, ..Params::quick() }
    }

    #[test]
    fn quick_run_plans_every_decade_and_passes_shape_checks() {
        let out = run(&tiny());
        assert_eq!(out.rows.len(), 2 * 5);
        assert_eq!(out.plans.len(), 2);
        let failures = check(&out);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn melody_stream_is_prefix_stable() {
        let small: Vec<_> = melody_stream(40, 64, 9).collect();
        let large: Vec<_> = melody_stream(100, 64, 9).take(40).collect();
        assert_eq!(small, large);
    }
}
