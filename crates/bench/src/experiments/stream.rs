//! Streaming query-as-you-hum: refinement latency and result churn versus
//! hum length, over the sessionful (v2) wire protocol.
//!
//! Each hum is streamed into a server-side session in equal-length chunks;
//! after every chunk a `refine` runs the session's k-NN over everything
//! heard so far, and the round trip is timed. Two things are measured per
//! checkpoint fraction of the hum:
//!
//! - **refinement latency** (p50/p95 round-trip milliseconds) — the cost
//!   of re-querying as the hum grows, which the admission queue serves
//!   like any one-shot query;
//! - **result churn** — the fraction of the top-k id set replaced since
//!   the previous refinement, plus how often the current top-1 already
//!   agrees with the final (full-hum) top-1. Churn decaying toward zero
//!   is the evidence that streaming refinement converges rather than
//!   thrashing.
//!
//! Every refinement — not just the final one — is compared bit for bit
//! against an in-process one-shot query over the same prefix, so the
//! committed results double as evidence for the streaming bit-identity
//! contract on the wire.

use std::time::Instant;

use serde::Serialize;

use hum_core::engine::QueryRequest;
use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::generate_hums;
use hum_qbh::system::{QbhConfig, QbhMatch, QbhSystem};
use hum_server::{Client, QueryOptions, Server, ServerConfig, ServiceQuery};

use crate::report::{fmt3, TextTable};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Database melodies (Fig 9 scale: 35,000).
    pub melodies: usize,
    /// Hums streamed through sessions.
    pub hums: usize,
    /// Neighbors per refinement.
    pub k: usize,
    /// Refinement checkpoints per hum (chunks of 1/checkpoints of the hum).
    pub checkpoints: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Params { melodies: 35_000, hums: 40, k: 10, checkpoints: 8, seed: 41 }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params { melodies: 2_000, hums: 8, checkpoints: 4, ..Params::paper() }
    }
}

/// One checkpoint-fraction measurement, aggregated over every hum.
#[derive(Debug, Clone, Serialize)]
pub struct StreamRow {
    /// Fraction of the hum heard at this checkpoint (1.0 = the full hum).
    pub fraction: f64,
    /// Mean frames buffered in the session at this checkpoint.
    pub mean_frames: f64,
    /// Median refine round-trip latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile refine round-trip latency, milliseconds.
    pub p95_ms: f64,
    /// Mean fraction of the top-k id set replaced since the previous
    /// checkpoint (the first checkpoint counts as fully new: 1.0).
    pub churn: f64,
    /// Fraction of hums whose top-1 at this checkpoint already equals
    /// their final full-hum top-1.
    pub top1_agreement: f64,
    /// Whether every refinement at this checkpoint was bit-identical to
    /// an in-process one-shot query over the same prefix.
    pub identical: bool,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Database size.
    pub melodies: usize,
    /// Hums streamed.
    pub hums: usize,
    /// Neighbors per refinement.
    pub k: usize,
    /// One row per checkpoint fraction.
    pub rows: Vec<StreamRow>,
}

/// Nearest-rank percentile of an ascending-sorted latency list, in ms.
fn percentile_ms(sorted_nanos: &[u64], pct: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted_nanos.len() as f64).ceil() as usize;
    sorted_nanos[rank.clamp(1, sorted_nanos.len()) - 1] as f64 / 1e6
}

fn matches_bit_identical(served: &[hum_server::ServiceMatch], local: &[QbhMatch]) -> bool {
    served.len() == local.len()
        && served.iter().zip(local).all(|(s, l)| {
            (s.id, s.song, s.phrase) == (l.id, l.song, l.phrase)
                && s.distance.to_bits() == l.distance.to_bits()
        })
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: params.melodies.div_ceil(20),
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let band = system.band();
    let hums: Vec<Vec<f64>> =
        generate_hums(&db, SingerProfile::good(), params.hums, params.seed)
            .into_iter()
            .map(|h| h.series)
            .collect();

    // In-process one-shot baselines for every (hum, prefix) pair, computed
    // before the server takes ownership of the system. The server defaults
    // omitted bands to the system's configured width, so pin the same band.
    let prefix_len = |hum: &[f64], checkpoint: usize| {
        (hum.len() * checkpoint).div_ceil(params.checkpoints).max(1)
    };
    let baseline: Vec<Vec<Vec<QbhMatch>>> = hums
        .iter()
        .map(|hum| {
            (1..=params.checkpoints)
                .map(|c| {
                    system
                        .try_query_request(
                            &hum[..prefix_len(hum, c)],
                            QueryRequest::knn(params.k).with_band(band),
                        )
                        .map(|(results, _)| results.matches)
                        .unwrap_or_default()
                })
                .collect()
        })
        .collect();

    let server = Server::start(system, "127.0.0.1:0", ServerConfig::default())
        .expect("bind an ephemeral loopback port");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Per-checkpoint accumulators across hums.
    let mut latencies: Vec<Vec<u64>> = vec![Vec::new(); params.checkpoints];
    let mut frames_total: Vec<u64> = vec![0; params.checkpoints];
    let mut churn_total: Vec<f64> = vec![0.0; params.checkpoints];
    let mut top1_hits: Vec<usize> = vec![0; params.checkpoints];
    let mut identical: Vec<bool> = vec![true; params.checkpoints];

    for (hum, local) in hums.iter().zip(&baseline) {
        let session = client
            .open_session(ServiceQuery::Knn { k: params.k }, &QueryOptions::default())
            .expect("open session");
        let mut sent = 0usize;
        let mut previous_ids: Vec<u64> = Vec::new();
        let mut top1_per_checkpoint: Vec<Option<u64>> = Vec::new();
        for c in 1..=params.checkpoints {
            let end = prefix_len(hum, c);
            client.append_frames(session, &hum[sent..end]).expect("append");
            sent = end;

            let t0 = Instant::now();
            let refined = client.refine(session, None).expect("refine");
            latencies[c - 1].push(t0.elapsed().as_nanos() as u64);
            frames_total[c - 1] += refined.frames;
            identical[c - 1] &=
                matches_bit_identical(&refined.reply.matches, &local[c - 1]);

            let ids: Vec<u64> = refined.reply.matches.iter().map(|m| m.id).collect();
            let new = ids.iter().filter(|id| !previous_ids.contains(id)).count();
            churn_total[c - 1] += new as f64 / ids.len().max(1) as f64;
            top1_per_checkpoint.push(ids.first().copied());
            previous_ids = ids;
        }
        client.close_session(session).expect("close session");

        let final_top1 = top1_per_checkpoint.last().copied().flatten();
        for (c, top1) in top1_per_checkpoint.iter().enumerate() {
            if top1.is_some() && *top1 == final_top1 {
                top1_hits[c] += 1;
            }
        }
    }
    drop(client);
    server.shutdown().expect("graceful shutdown returns the system");

    let rows = (0..params.checkpoints)
        .map(|c| {
            latencies[c].sort_unstable();
            StreamRow {
                fraction: (c + 1) as f64 / params.checkpoints as f64,
                mean_frames: frames_total[c] as f64 / params.hums.max(1) as f64,
                p50_ms: percentile_ms(&latencies[c], 50.0),
                p95_ms: percentile_ms(&latencies[c], 95.0),
                churn: churn_total[c] / params.hums.max(1) as f64,
                top1_agreement: top1_hits[c] as f64 / params.hums.max(1) as f64,
                identical: identical[c],
            }
        })
        .collect();

    Output { melodies: db.len().min(params.melodies), hums: params.hums, k: params.k, rows }
}

/// Renders the latency/churn table.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut table = TextTable::new(vec![
        "fraction",
        "frames",
        "p50 ms",
        "p95 ms",
        "churn",
        "top1 agreement",
        "identical",
    ]);
    for row in &output.rows {
        table.row(vec![
            format!("{:.3}", row.fraction),
            format!("{:.0}", row.mean_frames),
            fmt3(row.p50_ms),
            fmt3(row.p95_ms),
            format!("{:.3}", row.churn),
            format!("{:.3}", row.top1_agreement),
            if row.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let text = format!(
        "Streaming refinement over TCP loopback ({} melodies, {} hums, k={}, \
         {} checkpoints per hum)\n\n{}",
        output.melodies,
        output.hums,
        output.k,
        output.rows.len(),
        table.render()
    );
    (text, table)
}

/// Shape checks: prefix bit-identity everywhere, ordered percentiles,
/// growing sessions, and well-formed churn (the first checkpoint is fully
/// new by definition; how fast churn decays is reported, not gated — a
/// short prefix re-normalizes to a genuinely different canonical series,
/// so early top-k reshuffles are real behavior, not noise).
pub fn check(output: &Output) -> Vec<String> {
    let mut failures = Vec::new();
    for row in &output.rows {
        if !row.identical {
            failures.push(format!(
                "fraction {:.3}: refinements deviate from in-process one-shot \
                 queries over the same prefix",
                row.fraction
            ));
        }
        if row.p50_ms > row.p95_ms {
            failures.push(format!("fraction {:.3}: p50 above p95", row.fraction));
        }
        if !(0.0..=1.0).contains(&row.churn) {
            failures.push(format!(
                "fraction {:.3}: churn {} outside [0, 1]",
                row.fraction, row.churn
            ));
        }
    }
    for pair in output.rows.windows(2) {
        if pair[1].mean_frames <= pair[0].mean_frames {
            failures.push(format!(
                "fraction {:.3}: sessions did not grow (mean frames {} -> {})",
                pair[1].fraction, pair[0].mean_frames, pair[1].mean_frames
            ));
        }
    }
    if let (Some(first), Some(last)) = (output.rows.first(), output.rows.last()) {
        if (first.churn - 1.0).abs() > 1e-12 {
            failures.push(format!(
                "first checkpoint churn {} != 1.0 (everything should be new)",
                first.churn
            ));
        }
        if last.top1_agreement < 1.0 {
            failures.push(
                "final checkpoint disagrees with itself on top-1".to_string(),
            );
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_prefix_bit_identical_and_converges() {
        let out = run(&Params {
            melodies: 400,
            hums: 4,
            checkpoints: 3,
            ..Params::quick()
        });
        assert_eq!(out.rows.len(), 3);
        assert!(check(&out).is_empty(), "{:?}", check(&out));
        for row in &out.rows {
            assert!(row.identical, "{row:?}");
            assert!(row.p50_ms > 0.0, "{row:?}");
        }
    }

    #[test]
    fn render_reports_every_checkpoint() {
        let out = run(&Params {
            melodies: 400,
            hums: 2,
            checkpoints: 2,
            ..Params::quick()
        });
        let (text, table) = render(&out);
        assert!(text.contains("Streaming refinement"));
        assert_eq!(table.to_csv().lines().count(), out.rows.len() + 1);
    }
}
