//! Shared machinery for the candidate / page-access sweeps of Figures 8–10.
//!
//! Builds two GEMINI engines over the *same* data and R\*-tree page size —
//! one indexing with New_PAA, one with Keogh_PAA — and replays the same
//! ε-range queries against both across a grid of warping widths and
//! thresholds, recording the paper's two implementation-bias-free cost
//! metrics: candidates retrieved and page (node) accesses.

use serde::Serialize;

use hum_core::dtw::band_for_warping_width;
use hum_core::engine::{DtwIndexEngine, EngineConfig, QueryRequest};
use hum_core::transform::paa::{KeoghPaa, NewPaa};
use hum_core::transform::EnvelopeTransform;
use hum_index::{RStarTree, SpatialIndex};

/// The warping widths of Figures 8–10 (0.02 → 0.2, step 0.02).
pub fn paper_widths() -> Vec<f64> {
    (1..=10).map(|i| 0.02 * i as f64).collect()
}

/// The query thresholds ε of Figures 8–10.
pub const THRESHOLDS: [f64; 2] = [0.2, 0.8];

/// One grid point of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Warping width δ.
    pub warping_width: f64,
    /// Threshold ε (range radius = √(n·ε)).
    pub threshold: f64,
    /// Mean candidates retrieved per query.
    pub candidates: f64,
    /// Mean page accesses per query.
    pub page_accesses: f64,
    /// Mean final matches (identical across methods — a correctness probe).
    pub matches: f64,
}

/// A full sweep for one method.
#[derive(Debug, Clone, Serialize)]
pub struct MethodSweep {
    /// "New_PAA" or "Keogh_PAA".
    pub method: String,
    /// Grid points in (threshold-major, width-minor) order.
    pub points: Vec<SweepPoint>,
}

/// Runs the two-method sweep over normal-form series and queries.
///
/// `dims` must divide the series length. The range radius for threshold ε
/// is `√(n·ε)`, the paper's "range nε" on squared distances.
///
/// # Panics
/// Panics if the database is empty or lengths are inconsistent.
pub fn run_sweep(
    database: &[Vec<f64>],
    queries: &[Vec<f64>],
    dims: usize,
    widths: &[f64],
    thresholds: &[f64],
    page_bytes: usize,
) -> Vec<MethodSweep> {
    assert!(!database.is_empty(), "empty database");
    let n = database[0].len();
    assert!(database.iter().all(|s| s.len() == n), "ragged database");
    assert!(queries.iter().all(|s| s.len() == n), "query length mismatch");

    let new_engine = build_engine(NewPaa::new(n, dims), database, dims, page_bytes);
    let keogh_engine = build_engine(KeoghPaa::new(n, dims), database, dims, page_bytes);

    vec![
        sweep_one("New_PAA", &new_engine, queries, n, widths, thresholds),
        sweep_one("Keogh_PAA", &keogh_engine, queries, n, widths, thresholds),
    ]
}

fn build_engine<T: EnvelopeTransform>(
    transform: T,
    database: &[Vec<f64>],
    dims: usize,
    page_bytes: usize,
) -> DtwIndexEngine<T, RStarTree> {
    let mut engine = DtwIndexEngine::new(
        transform,
        RStarTree::with_page_size(dims, page_bytes),
        EngineConfig::default(),
    );
    for (i, s) in database.iter().enumerate() {
        engine.insert(i as u64, s.clone());
    }
    engine
}

fn sweep_one<T: EnvelopeTransform, I: SpatialIndex>(
    method: &str,
    engine: &DtwIndexEngine<T, I>,
    queries: &[Vec<f64>],
    n: usize,
    widths: &[f64],
    thresholds: &[f64],
) -> MethodSweep {
    let mut points = Vec::with_capacity(widths.len() * thresholds.len());
    for &threshold in thresholds {
        let radius = (n as f64 * threshold).sqrt();
        for &width in widths {
            let band = band_for_warping_width(width, n);
            let mut candidates = 0u64;
            let mut pages = 0u64;
            let mut matches = 0u64;
            for q in queries {
                let request =
                    QueryRequest::range(radius).with_series(q.clone()).with_band(band);
                let result = engine.query(&request).result;
                candidates += result.stats.index.candidates;
                pages += result.stats.index.node_accesses;
                matches += result.stats.matches;
            }
            let nq = queries.len().max(1) as f64;
            points.push(SweepPoint {
                warping_width: width,
                threshold,
                candidates: candidates as f64 / nq,
                page_accesses: pages as f64 / nq,
                matches: matches as f64 / nq,
            });
        }
    }
    MethodSweep { method: method.to_string(), points }
}

/// Renders two method sweeps side by side for one metric.
pub fn render_metric(
    sweeps: &[MethodSweep],
    metric: impl Fn(&SweepPoint) -> f64,
    metric_name: &str,
) -> crate::report::TextTable {
    let mut table = crate::report::TextTable::new(vec![
        "threshold".to_string(),
        "warping width".to_string(),
        format!("{metric_name} (Keogh_PAA)"),
        format!("{metric_name} (New_PAA)"),
    ]);
    let new = &sweeps.iter().find(|s| s.method == "New_PAA").expect("New_PAA sweep").points;
    let keogh =
        &sweeps.iter().find(|s| s.method == "Keogh_PAA").expect("Keogh_PAA sweep").points;
    for (n, k) in new.iter().zip(keogh.iter()) {
        debug_assert_eq!(n.warping_width, k.warping_width);
        table.row(vec![
            format!("{:.1}", n.threshold),
            format!("{:.2}", n.warping_width),
            crate::report::fmt1(metric(k)),
            crate::report::fmt1(metric(n)),
        ]);
    }
    table
}

/// Qualitative checks shared by Figures 8–10; returns failed claims.
pub fn verify_shape(sweeps: &[MethodSweep]) -> Vec<String> {
    let mut failures = Vec::new();
    let new = &sweeps.iter().find(|s| s.method == "New_PAA").expect("New_PAA sweep").points;
    let keogh =
        &sweeps.iter().find(|s| s.method == "Keogh_PAA").expect("Keogh_PAA sweep").points;

    let mut new_total = 0.0;
    let mut keogh_total = 0.0;
    for (n, k) in new.iter().zip(keogh.iter()) {
        // Exactness: both methods must return identical match counts.
        if (n.matches - k.matches).abs() > 1e-9 {
            failures.push(format!(
                "match counts differ at delta={:.2} eps={:.1}: {} vs {}",
                n.warping_width, n.threshold, n.matches, k.matches
            ));
        }
        // A tighter bound can never admit more candidates.
        if n.candidates > k.candidates + 1e-9 {
            failures.push(format!(
                "New_PAA admits more candidates at delta={:.2} eps={:.1}",
                n.warping_width, n.threshold
            ));
        }
        new_total += n.candidates;
        keogh_total += k.candidates;
    }
    // The paper's headline: a clear aggregate advantage for New_PAA.
    if new_total * 1.05 >= keogh_total {
        failures.push(format!(
            "aggregate candidates not clearly better: New_PAA {new_total:.1} vs Keogh_PAA {keogh_total:.1}"
        ));
    }
    // Candidates grow with warping width within each method and threshold.
    for pts in [new, keogh] {
        for pair in pts.windows(2) {
            if pair[0].threshold == pair[1].threshold
                && pair[1].candidates + 1e-9 < pair[0].candidates * 0.5
            {
                failures.push(format!(
                    "candidates dropped sharply with width at eps={:.1}",
                    pair[0].threshold
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use hum_core::normal::NormalForm;
    use hum_datasets::{generate, DatasetFamily};

    fn workload(db: usize, q: usize, n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let normal = NormalForm::with_length(n);
        let all: Vec<Vec<f64>> = generate(DatasetFamily::RandomWalk, db + q, n, 3)
            .into_iter()
            .map(|s| normal.apply(&s))
            .collect();
        let queries = all[db..].to_vec();
        (all[..db].to_vec(), queries)
    }

    #[test]
    fn sweep_produces_full_grid_and_holds_shape() {
        let (db, queries) = workload(300, 5, 64);
        let sweeps = run_sweep(&db, &queries, 8, &[0.05, 0.1, 0.2], &THRESHOLDS, 1024);
        assert_eq!(sweeps.len(), 2);
        for sweep in &sweeps {
            assert_eq!(sweep.points.len(), 6);
        }
        let failures = verify_shape(&sweeps);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn candidates_increase_with_threshold() {
        let (db, queries) = workload(300, 5, 64);
        let sweeps = run_sweep(&db, &queries, 8, &[0.1], &THRESHOLDS, 1024);
        for sweep in &sweeps {
            assert!(
                sweep.points[1].candidates >= sweep.points[0].candidates,
                "{}: eps=0.8 should admit at least as many candidates",
                sweep.method
            );
        }
    }

    #[test]
    fn render_metric_emits_one_row_per_grid_point() {
        let (db, queries) = workload(100, 3, 64);
        let sweeps = run_sweep(&db, &queries, 8, &[0.1, 0.2], &[0.2], 1024);
        let table = render_metric(&sweeps, |p| p.candidates, "candidates");
        assert_eq!(table.render().lines().count(), 4); // header + rule + 2 rows
    }

    #[test]
    fn paper_widths_match_figure_axis() {
        let w = paper_widths();
        assert_eq!(w.len(), 10);
        assert!((w[0] - 0.02).abs() < 1e-12);
        assert!((w[9] - 0.2).abs() < 1e-12);
    }
}
