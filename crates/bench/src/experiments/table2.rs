//! Table 2 — "The number of melodies correctly retrieved using different
//! approaches": rank bins of good-singer hum queries under the time-series
//! approach vs the contour approach, on the 1000-phrase songbook.

use serde::Serialize;

use hum_music::contour::ContourAlphabet;
use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::{evaluate_contour, evaluate_timeseries, generate_hums_audio, RankBins};
use hum_qbh::system::{QbhConfig, QbhSystem};

use crate::report::TextTable;

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Songs in the songbook (phrases = songs × 20).
    pub songs: usize,
    /// Number of hum queries.
    pub queries: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale: 50 songs → 1000 phrases, 20 hum queries.
    pub fn paper() -> Self {
        Params { songs: 50, queries: 20, seed: 2003 }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params { songs: 10, queries: 8, seed: 2003 }
    }
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Database size (phrases).
    pub melodies: usize,
    /// Queries issued.
    pub queries: usize,
    /// Rank-bin counts for the time-series approach `[1, 2-3, 4-5, 6-10, 10-]`.
    pub time_series: [usize; 5],
    /// Rank-bin counts for the contour approach.
    pub contour: [usize; 5],
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: params.songs,
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let hums = generate_hums_audio(&db, SingerProfile::good(), params.queries, params.seed);
    let ts = evaluate_timeseries(&system, &hums);
    let contour = evaluate_contour(&db, &hums, ContourAlphabet::Five);
    Output {
        melodies: db.len(),
        queries: params.queries,
        time_series: ts.as_row(),
        contour: contour.as_row(),
    }
}

/// Renders the paper's table layout.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut table =
        TextTable::new(vec!["Rank", "Time series Approach", "Contour Approach"]);
    let labels = ["1", "2-3", "4-5", "6-10", "10-"];
    for (i, label) in labels.iter().enumerate() {
        table.row(vec![
            label.to_string(),
            output.time_series[i].to_string(),
            output.contour[i].to_string(),
        ]);
    }
    let text = format!(
        "Table 2: melodies correctly retrieved by rank ({} melodies, {} good-singer hums)\n\n{}",
        output.melodies,
        output.queries,
        table.render()
    );
    (text, table)
}

/// Qualitative checks for the paper's headline comparison; returns the
/// failed claims.
pub fn check(output: &Output) -> Vec<String> {
    let (ts, contour) = bins(output);
    let mut failures = Vec::new();
    if ts.top1 < contour.top1 {
        failures.push(format!(
            "time series rank-1 count {} below contour {}",
            ts.top1, contour.top1
        ));
    }
    if ts.within_top10() < contour.within_top10() {
        failures.push(format!(
            "time series top-10 count {} below contour {}",
            ts.within_top10(),
            contour.within_top10()
        ));
    }
    failures
}

/// Convenience wrapper used by tests.
pub fn bins(output: &Output) -> (RankBins, RankBins) {
    let from = |row: [usize; 5]| RankBins {
        top1: row[0],
        r2_3: row[1],
        r4_5: row[2],
        r6_10: row[3],
        beyond10: row[4],
    };
    (from(output.time_series), from(output.contour))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_time_series_dominance() {
        let out = run(&Params::quick());
        assert_eq!(out.queries, 8);
        let (ts, contour) = bins(&out);
        assert_eq!(ts.total(), 8);
        assert_eq!(contour.total(), 8);
        // The paper's headline: the time-series approach clearly beats the
        // contour approach at rank 1.
        assert!(ts.top1 >= contour.top1, "ts {ts} vs contour {contour}");
        assert!(ts.within_top10() >= contour.within_top10());
    }

    #[test]
    fn render_contains_all_bins() {
        let out = run(&Params::quick());
        let (text, table) = render(&out);
        assert!(text.contains("Table 2"));
        assert_eq!(table.render().lines().count(), 7); // header + rule + 5 bins
    }
}
