//! Figure 7 — "Mean value of the tightness of lower bound changes with the
//! warping widths, using LB, New_PAA, Keogh_PAA, SVD and DFT for the random
//! walk time series data set".
//!
//! Protocol (paper §5.2): random walks of length 256, dimensionality 4,
//! warping widths 0 → 0.1, each point the average of 500 experiments. The
//! shape to reproduce: SVD wins at width 0 (it is the optimal Euclidean
//! reduction), but the all-positive PAA coefficients make New_PAA overtake
//! SVD and DFT as the width grows, and New_PAA dominates Keogh_PAA
//! throughout.

use serde::Serialize;

use hum_core::dtw::band_for_warping_width;
use hum_core::normal::NormalForm;
use hum_core::tightness::{envelope_tightness, transform_tightness};
use hum_core::transform::dft::Dft;
use hum_core::transform::paa::{KeoghPaa, NewPaa};
use hum_core::transform::svd::SvdTransform;
use hum_datasets::{generate, DatasetFamily};

use crate::report::{fmt3, TextTable};

/// The method names, in the paper's legend order.
pub const METHODS: [&str; 5] = ["LB", "New_PAA", "Keogh_PAA", "SVD", "DFT"];

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Series length (paper: 256).
    pub length: usize,
    /// Reduced dimensionality (paper: 4).
    pub dims: usize,
    /// Number of random-walk pairs per point (paper: 500 experiments).
    pub pairs: usize,
    /// Number of warping-width steps from 0 to 0.1 inclusive.
    pub width_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Params { length: 256, dims: 4, pairs: 500, width_steps: 11, seed: 7 }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params { pairs: 40, width_steps: 6, ..Params::paper() }
    }
}

/// One point of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Warping width δ.
    pub warping_width: f64,
    /// Mean tightness per method, in [`METHODS`] order.
    pub tightness: [f64; 5],
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// One point per warping width.
    pub points: Vec<Point>,
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    let normal = NormalForm::with_length(params.length);
    let series: Vec<Vec<f64>> =
        generate(DatasetFamily::RandomWalk, params.pairs * 2, params.length, params.seed)
            .into_iter()
            .map(|s| normal.apply(&s))
            .collect();
    let new_paa = NewPaa::new(params.length, params.dims);
    let keogh_paa = KeoghPaa::new(params.length, params.dims);
    let dft = Dft::new(params.length, params.dims);
    // SVD is fitted on the experiment population, as in the paper's setup
    // where SVD is derived from the indexed data.
    let svd = SvdTransform::fit(&series, params.dims);

    let points = (0..params.width_steps)
        .map(|step| {
            let warping_width = 0.1 * step as f64 / (params.width_steps - 1).max(1) as f64;
            let band = band_for_warping_width(warping_width, params.length);
            let mut sums = [0.0f64; 5];
            for pair in series.chunks_exact(2) {
                let (x, y) = (&pair[0], &pair[1]);
                sums[0] += envelope_tightness(x, y, band);
                sums[1] += transform_tightness(&new_paa, x, y, band);
                sums[2] += transform_tightness(&keogh_paa, x, y, band);
                sums[3] += transform_tightness(&svd, x, y, band);
                sums[4] += transform_tightness(&dft, x, y, band);
            }
            let n = params.pairs.max(1) as f64;
            sums.iter_mut().for_each(|s| *s /= n);
            Point { warping_width, tightness: sums }
        })
        .collect();
    Output { points }
}

/// Renders the figure as a table of series.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut header = vec!["Warping width".to_string()];
    header.extend(METHODS.iter().map(|m| m.to_string()));
    let mut table = TextTable::new(header);
    for p in &output.points {
        let mut row = vec![format!("{:.2}", p.warping_width)];
        row.extend(p.tightness.iter().map(|&t| fmt3(t)));
        table.row(row);
    }
    let text = format!(
        "Figure 7: tightness vs warping width on random walks (n=256, N=4)\n\n{}",
        table.render()
    );
    (text, table)
}

/// Checks the paper's qualitative claims; returns failed claims.
pub fn verify_shape(output: &Output) -> Vec<String> {
    let mut failures = Vec::new();
    let first = output.points.first().expect("at least one point");
    let last = output.points.last().expect("at least one point");
    // At width 0 (Euclidean), SVD is the tightest reduced method.
    let (_, new0, keogh0, svd0, dft0) = unpack(first);
    if svd0 + 1e-9 < new0 || svd0 + 1e-9 < dft0 || svd0 + 1e-9 < keogh0 {
        failures.push(format!(
            "SVD should dominate at width 0: svd={svd0:.3} new={new0:.3} dft={dft0:.3}"
        ));
    }
    // At the largest width, New_PAA beats SVD and DFT.
    let (_, new1, keogh1, svd1, dft1) = unpack(last);
    if new1 + 1e-9 < svd1 || new1 + 1e-9 < dft1 {
        failures.push(format!(
            "New_PAA should dominate at width 0.1: new={new1:.3} svd={svd1:.3} dft={dft1:.3}"
        ));
    }
    // New_PAA ≥ Keogh_PAA everywhere; LB is the ceiling everywhere.
    for p in &output.points {
        let (lb, new, keogh, svd, dft) = unpack(p);
        if new + 1e-9 < keogh {
            failures.push(format!("New_PAA below Keogh_PAA at {:.2}", p.warping_width));
        }
        for (name, v) in [("New_PAA", new), ("Keogh_PAA", keogh), ("SVD", svd), ("DFT", dft)] {
            if lb + 1e-9 < v {
                failures.push(format!("LB below {name} at {:.2}", p.warping_width));
            }
        }
    }
    let _ = (new0, keogh0, keogh1);
    failures
}

fn unpack(p: &Point) -> (f64, f64, f64, f64, f64) {
    (p.tightness[0], p.tightness[1], p.tightness[2], p.tightness[3], p.tightness[4])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_the_crossover_shape() {
        let out = run(&Params::quick());
        assert_eq!(out.points.len(), 6);
        let failures = verify_shape(&out);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn tightness_degrades_with_width_for_every_method() {
        let out = run(&Params { pairs: 30, width_steps: 5, ..Params::paper() });
        for (m, name) in METHODS.iter().enumerate() {
            let first = out.points.first().unwrap().tightness[m];
            let last = out.points.last().unwrap().tightness[m];
            assert!(last <= first + 0.05, "method {name} got tighter with width");
        }
    }

    #[test]
    fn render_includes_all_methods() {
        let out = run(&Params { pairs: 5, width_steps: 2, ..Params::paper() });
        let (text, _) = render(&out);
        for m in METHODS {
            assert!(text.contains(m));
        }
    }
}
