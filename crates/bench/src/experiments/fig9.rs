//! Figure 9 — "Performance comparisons with different query thresholds for
//! a large music database": candidates *and* page accesses on a 35,000-
//! melody database extracted from MIDI files (here: generated songs
//! round-tripped through our own SMF writer/parser), series length 128,
//! 8 reduced dimensions, R\*-tree.

use serde::Serialize;

use hum_core::normal::NormalForm;
use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::generate_hums;

use crate::experiments::sweep::{
    paper_widths, render_metric, run_sweep, verify_shape, MethodSweep, THRESHOLDS,
};
use crate::report::TextTable;

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Total melodies (paper: 35,000).
    pub melodies: usize,
    /// Normal-form length (paper: 128).
    pub length: usize,
    /// Feature dimensions (paper: 8).
    pub dims: usize,
    /// Hum queries averaged per grid point (paper: 500 experiments).
    pub queries: usize,
    /// Warping widths to sweep.
    pub width_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Params { melodies: 35_000, length: 128, dims: 8, queries: 100, width_steps: 10, seed: 9 }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params { melodies: 2_000, queries: 10, width_steps: 4, ..Params::paper() }
    }
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Database size.
    pub melodies: usize,
    /// Queries averaged.
    pub queries: usize,
    /// The two method sweeps.
    pub sweeps: Vec<MethodSweep>,
}

/// Runs the experiment. The database construction goes melody → SMF bytes →
/// parse → extract, exercising the paper's MIDI pipeline end to end.
pub fn run(params: &Params) -> Output {
    let songs = params.melodies.div_ceil(20);
    let db = MelodyDatabase::from_midi_roundtrip(&SongbookConfig {
        songs,
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    let normal = NormalForm::with_length(params.length);
    let database: Vec<Vec<f64>> = db
        .entries()
        .iter()
        .take(params.melodies)
        .map(|e| normal.apply(&e.melody().to_time_series(4)))
        .collect();
    let queries: Vec<Vec<f64>> =
        generate_hums(&db, SingerProfile::good(), params.queries, params.seed)
            .into_iter()
            .map(|h| normal.apply(&h.series))
            .collect();

    let widths: Vec<f64> = paper_widths().into_iter().take(params.width_steps).collect();
    let sweeps = run_sweep(&database, &queries, params.dims, &widths, &THRESHOLDS, 4096);
    Output { melodies: database.len(), queries: params.queries, sweeps }
}

/// Renders both metrics.
pub fn render(output: &Output) -> (String, TextTable) {
    let candidates = render_metric(&output.sweeps, |p| p.candidates, "candidates");
    let pages = render_metric(&output.sweeps, |p| p.page_accesses, "page accesses");
    let text = format!(
        "Figure 9: large music database ({} melodies from the MIDI pipeline, {} hums/point)\n\n\
         Candidates retrieved:\n{}\nPage accesses:\n{}",
        output.melodies,
        output.queries,
        candidates.render(),
        pages.render()
    );
    (text, candidates)
}

/// Qualitative checks: the shared sweep shape plus the paper's observation
/// that page accesses rise and fall with candidate counts.
pub fn check(output: &Output) -> Vec<String> {
    let mut failures = verify_shape(&output.sweeps);
    for sweep in &output.sweeps {
        for p in &sweep.points {
            if p.candidates > 0.5 && p.page_accesses < 1.0 {
                failures.push(format!(
                    "{}: candidates without page accesses at delta={:.2}",
                    sweep.method, p.warping_width
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_holds_the_figure_shape() {
        let out = run(&Params::quick());
        assert_eq!(out.melodies, 2_000);
        let failures = check(&out);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn page_accesses_track_candidates() {
        let out = run(&Params::quick());
        for sweep in &out.sweeps {
            // More candidates at larger widths should not come with fewer
            // page accesses (same threshold).
            let by_threshold = |t: f64| {
                sweep
                    .points
                    .iter()
                    .filter(|p| (p.threshold - t).abs() < 1e-9)
                    .collect::<Vec<_>>()
            };
            for t in THRESHOLDS {
                let pts = by_threshold(t);
                let first = pts.first().unwrap();
                let last = pts.last().unwrap();
                if last.candidates > first.candidates * 1.5 {
                    assert!(
                        last.page_accesses >= first.page_accesses,
                        "{}: pages should grow with candidates",
                        sweep.method
                    );
                }
            }
        }
    }
}
