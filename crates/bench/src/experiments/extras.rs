//! Ablations beyond the paper's figures — the design-choice experiments
//! DESIGN.md calls out, reported in the same candidates/page-accesses
//! currency as Figs 8–10:
//!
//! 1. **Index backend**: R\*-tree vs grid file vs linear scan under the same
//!    transform and workload;
//! 2. **Envelope second filter**: exact-DTW computations with and without
//!    the full-dimension LB refilter between index and verification;
//! 3. **Build strategy**: repeated insertion vs STR bulk loading (wall time
//!    and node count);
//! 4. **Transform pruning**: candidates for all five envelope transforms on
//!    one workload;
//! 5. **Verification cascade**: where candidates die (envelope bound,
//!    `LB_Improved`, early-abandoned DTW) and the DP-cell cost of
//!    verification, with the cascade fully on vs fully off.

use std::time::Instant;

use serde::Serialize;

use hum_core::dtw::band_for_warping_width;
use hum_core::engine::{DtwIndexEngine, EngineConfig, EngineStats, QueryRequest};
use hum_core::normal::NormalForm;
use hum_core::transform::dft::Dft;
use hum_core::transform::dwt::Dwt;
use hum_core::transform::paa::{KeoghPaa, NewPaa};
use hum_core::transform::svd::SvdTransform;
use hum_core::transform::EnvelopeTransform;
use hum_datasets::{generate, DatasetFamily};
use hum_index::{GridFile, LinearScan, RStarTree, SpatialIndex};

use crate::report::{cascade_table, fmt1, TextTable};

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Database size.
    pub series: usize,
    /// Series length.
    pub length: usize,
    /// Feature dimensions.
    pub dims: usize,
    /// Queries averaged.
    pub queries: usize,
    /// Warping width.
    pub warping_width: f64,
    /// Threshold ε.
    pub threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Full scale.
    pub fn paper() -> Self {
        Params {
            series: 20_000,
            length: 128,
            dims: 8,
            queries: 50,
            warping_width: 0.1,
            threshold: 0.2,
            seed: 12,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params { series: 2_000, queries: 10, ..Params::paper() }
    }
}

/// One backend's costs.
#[derive(Debug, Clone, Serialize)]
pub struct BackendRow {
    /// Backend name.
    pub backend: String,
    /// Mean candidates per query.
    pub candidates: f64,
    /// Mean page accesses per query.
    pub page_accesses: f64,
}

/// One transform's pruning power.
#[derive(Debug, Clone, Serialize)]
pub struct TransformRow {
    /// Transform name.
    pub transform: String,
    /// Mean candidates per query.
    pub candidates: f64,
}

/// Build-strategy costs.
#[derive(Debug, Clone, Serialize)]
pub struct BuildRow {
    /// Strategy name.
    pub strategy: String,
    /// Wall-clock build time in milliseconds.
    pub millis: f64,
    /// Nodes (pages) in the resulting tree.
    pub nodes: usize,
    /// Mean page accesses per range query on the built tree.
    pub page_accesses: f64,
}

/// One cascade configuration's verification costs, summed over the query
/// batch.
#[derive(Debug, Clone, Serialize)]
pub struct CascadeRow {
    /// Configuration name.
    pub config: String,
    /// Index candidates entering verification.
    pub candidates: u64,
    /// Candidates removed by the envelope second filter.
    pub lb_pruned: u64,
    /// Candidates removed by the `LB_Improved` third filter.
    pub lb_improved_pruned: u64,
    /// Exact DTW evaluations started.
    pub exact_started: u64,
    /// Exact DTW evaluations abandoned by the radius threshold.
    pub early_abandoned: u64,
    /// DTW dynamic-programming cells evaluated.
    pub dp_cells: u64,
    /// Matches returned.
    pub matches: u64,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Database size.
    pub series: usize,
    /// Backend ablation (New_PAA transform).
    pub backends: Vec<BackendRow>,
    /// Exact DTW computations with the LB second filter.
    pub exact_with_filter: f64,
    /// Exact DTW computations without it.
    pub exact_without_filter: f64,
    /// Build-strategy ablation for the R\*-tree.
    pub builds: Vec<BuildRow>,
    /// Transform pruning ablation (R\*-tree backend).
    pub transforms: Vec<TransformRow>,
    /// Verification-cascade ablation (R\*-tree backend, New\_PAA).
    pub cascade: Vec<CascadeRow>,
}

fn workload(params: &Params) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let normal = NormalForm::with_length(params.length);
    let database: Vec<Vec<f64>> =
        generate(DatasetFamily::RandomWalk, params.series, params.length, params.seed)
            .into_iter()
            .map(|s| normal.apply(&s))
            .collect();
    let queries: Vec<Vec<f64>> = generate(
        DatasetFamily::RandomWalk,
        params.queries,
        params.length,
        params.seed ^ 0x5150,
    )
    .into_iter()
    .map(|s| normal.apply(&s))
    .collect();
    (database, queries)
}

/// Runs all four ablations.
pub fn run(params: &Params) -> Output {
    let (database, queries) = workload(params);
    let band = band_for_warping_width(params.warping_width, params.length);
    let radius = (params.length as f64 * params.threshold).sqrt();

    // 1. Backends under New_PAA.
    let mut backends = Vec::new();
    let backend_list: Vec<(&str, Box<dyn SpatialIndex>)> = vec![
        ("R*-tree", Box::new(RStarTree::with_page_size(params.dims, 4096))),
        ("grid file", Box::new(GridFile::with_params(params.dims, 8, 1024, 4096))),
        ("linear scan", Box::new(LinearScan::with_page_size(params.dims, 4096))),
    ];
    for (name, index) in backend_list {
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(params.length, params.dims),
            index,
            EngineConfig::default(),
        );
        for (i, s) in database.iter().enumerate() {
            engine.insert(i as u64, s.clone());
        }
        let (mut cand, mut pages) = (0u64, 0u64);
        for q in &queries {
            let request = QueryRequest::range(radius).with_series(q.clone()).with_band(band);
            let r = engine.query(&request).result;
            cand += r.stats.index.candidates;
            pages += r.stats.index.node_accesses;
        }
        let n = queries.len().max(1) as f64;
        backends.push(BackendRow {
            backend: name.to_string(),
            candidates: cand as f64 / n,
            page_accesses: pages as f64 / n,
        });
    }

    // 2. Envelope second filter on/off (R*-tree, New_PAA).
    let exact_counts: Vec<f64> = [true, false]
        .iter()
        .map(|&refine| {
            let mut engine = DtwIndexEngine::new(
                NewPaa::new(params.length, params.dims),
                RStarTree::with_page_size(params.dims, 4096),
                // Other cascade stages off: this ablation isolates the
                // envelope second filter.
                EngineConfig {
                    envelope_refinement: refine,
                    lb_improved_refinement: false,
                    early_abandon: false,
                    ..EngineConfig::default()
                },
            );
            for (i, s) in database.iter().enumerate() {
                engine.insert(i as u64, s.clone());
            }
            let total: u64 = queries
                .iter()
                .map(|q| {
                    let request =
                        QueryRequest::range(radius).with_series(q.clone()).with_band(band);
                    engine.query(&request).result.stats.exact_computations
                })
                .sum();
            total as f64 / queries.len().max(1) as f64
        })
        .collect();

    // 3. Build strategies (point data only; query cost measured after).
    let features: Vec<(u64, Vec<f64>)> = {
        let t = NewPaa::new(params.length, params.dims);
        database.iter().enumerate().map(|(i, s)| (i as u64, t.project(s))).collect()
    };
    let mut builds = Vec::new();
    {
        let started = Instant::now();
        let mut tree = RStarTree::with_page_size(params.dims, 4096);
        for (id, p) in features.clone() {
            tree.insert(id, p);
        }
        builds.push(build_row("insert one-by-one", started, &tree, &queries, params, band, radius, &database));
    }
    {
        let started = Instant::now();
        let tree = RStarTree::bulk_load(params.dims, 4096, features.clone());
        builds.push(build_row("STR bulk load", started, &tree, &queries, params, band, radius, &database));
    }

    // 4. Transform pruning on the R*-tree.
    let transform_list: Vec<Box<dyn EnvelopeTransform>> = vec![
        Box::new(NewPaa::new(params.length, params.dims)),
        Box::new(KeoghPaa::new(params.length, params.dims)),
        Box::new(Dft::new(params.length, params.dims)),
        Box::new(Dwt::new(params.length, params.dims)),
        Box::new(SvdTransform::fit(&database[..500.min(database.len())], params.dims)),
    ];
    let mut transforms = Vec::new();
    for transform in transform_list {
        let name = transform.name().to_string();
        let mut engine = DtwIndexEngine::new(
            transform,
            RStarTree::with_page_size(params.dims, 4096),
            EngineConfig::default(),
        );
        for (i, s) in database.iter().enumerate() {
            engine.insert(i as u64, s.clone());
        }
        let total: u64 = queries
            .iter()
            .map(|q| {
                let request =
                    QueryRequest::range(radius).with_series(q.clone()).with_band(band);
                engine.query(&request).result.stats.index.candidates
            })
            .sum();
        transforms.push(TransformRow {
            transform: name,
            candidates: total as f64 / queries.len().max(1) as f64,
        });
    }

    // 5. Verification cascade (R*-tree, New_PAA): where candidates die and
    // what verification costs in DP cells, per configuration.
    let cascade_configs = [
        ("no cascade", EngineConfig {
            envelope_refinement: false,
            lb_improved_refinement: false,
            early_abandon: false,
            ..EngineConfig::default()
        }),
        ("envelope only", EngineConfig {
            envelope_refinement: true,
            lb_improved_refinement: false,
            early_abandon: false,
            ..EngineConfig::default()
        }),
        ("full cascade", EngineConfig::default()),
    ];
    let mut cascade = Vec::new();
    for (name, config) in cascade_configs {
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(params.length, params.dims),
            RStarTree::with_page_size(params.dims, 4096),
            config,
        );
        for (i, s) in database.iter().enumerate() {
            engine.insert(i as u64, s.clone());
        }
        let mut total = EngineStats::default();
        for q in &queries {
            let request = QueryRequest::range(radius).with_series(q.clone()).with_band(band);
            total.absorb(&engine.query(&request).result.stats);
        }
        cascade.push(CascadeRow {
            config: name.to_string(),
            candidates: total.index.candidates,
            lb_pruned: total.lb_pruned,
            lb_improved_pruned: total.lb_improved_pruned,
            exact_started: total.exact_computations,
            early_abandoned: total.early_abandoned,
            dp_cells: total.dp_cells,
            matches: total.matches,
        });
    }

    Output {
        series: params.series,
        backends,
        exact_with_filter: exact_counts[0],
        exact_without_filter: exact_counts[1],
        builds,
        transforms,
        cascade,
    }
}

#[allow(clippy::too_many_arguments)] // internal helper mirroring the measurement context
fn build_row(
    strategy: &str,
    started: Instant,
    tree: &RStarTree,
    queries: &[Vec<f64>],
    params: &Params,
    band: usize,
    radius: f64,
    database: &[Vec<f64>],
) -> BuildRow {
    let millis = started.elapsed().as_secs_f64() * 1e3;
    // Measure index-level page accesses directly against the prebuilt tree
    // (queries are already in normal form).
    let transform = NewPaa::new(params.length, params.dims);
    let mut pages = 0u64;
    for q in queries {
        let env = hum_core::envelope::Envelope::compute(q, band);
        let fbox = transform.project_envelope(&env);
        let (_, stats) = tree.range_query(&hum_index::Query::Rect(fbox), radius);
        pages += stats.node_accesses;
    }
    let _ = database;
    BuildRow {
        strategy: strategy.to_string(),
        millis,
        nodes: tree.node_count(),
        page_accesses: pages as f64 / queries.len().max(1) as f64,
    }
}

/// Renders the four ablation tables.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut backends = TextTable::new(vec!["backend", "candidates", "page accesses"]);
    for row in &output.backends {
        backends.row(vec![row.backend.clone(), fmt1(row.candidates), fmt1(row.page_accesses)]);
    }
    let mut builds = TextTable::new(vec!["build strategy", "ms", "nodes", "page accesses/query"]);
    for row in &output.builds {
        builds.row(vec![
            row.strategy.clone(),
            fmt1(row.millis),
            row.nodes.to_string(),
            fmt1(row.page_accesses),
        ]);
    }
    let mut transforms = TextTable::new(vec!["transform", "candidates"]);
    for row in &output.transforms {
        transforms.row(vec![row.transform.clone(), fmt1(row.candidates)]);
    }
    // Reconstruct stats bundles so the cascade table renders through the
    // shared report helper.
    let cascade_stats: Vec<(String, EngineStats)> = output
        .cascade
        .iter()
        .map(|r| {
            let mut s = EngineStats::default();
            s.index.candidates = r.candidates;
            s.lb_pruned = r.lb_pruned;
            s.lb_improved_pruned = r.lb_improved_pruned;
            s.exact_computations = r.exact_started;
            s.early_abandoned = r.early_abandoned;
            s.dp_cells = r.dp_cells;
            s.matches = r.matches;
            (r.config.clone(), s)
        })
        .collect();
    let cascade = cascade_table(cascade_stats.iter().map(|(l, s)| (l.as_str(), s)));
    let text = format!(
        "Ablations ({} random walks, delta=0.1, eps=0.2)\n\n\
         Backend comparison (New_PAA):\n{}\n\
         Envelope second filter: {:.1} exact DTWs/query with, {:.1} without\n\n\
         R*-tree build strategy:\n{}\n\
         Transform pruning power:\n{}\n\
         Verification cascade (totals over the query batch):\n{}",
        output.series,
        backends.render(),
        output.exact_with_filter,
        output.exact_without_filter,
        builds.render(),
        transforms.render(),
        cascade.render()
    );
    (text, backends)
}

/// Sanity checks; returns failed claims.
pub fn check(output: &Output) -> Vec<String> {
    let mut failures = Vec::new();
    let by = |name: &str| output.backends.iter().find(|b| b.backend == name);
    let (Some(rstar), Some(linear)) = (by("R*-tree"), by("linear scan")) else {
        return vec!["missing backend rows".into()];
    };
    if rstar.page_accesses > linear.page_accesses {
        failures.push("R*-tree reads more pages than a full scan".into());
    }
    if (rstar.candidates - linear.candidates).abs() > 1e-6 {
        failures.push("candidate sets must be backend-independent".into());
    }
    if output.exact_with_filter > output.exact_without_filter + 1e-9 {
        failures.push("the LB second filter must never add exact computations".into());
    }
    if let [insert, bulk] = &output.builds[..] {
        if bulk.nodes > insert.nodes {
            failures.push("bulk load should pack at least as tightly".into());
        }
    }
    let cascade_by = |name: &str| output.cascade.iter().find(|r| r.config == name);
    if let (Some(off), Some(full)) = (cascade_by("no cascade"), cascade_by("full cascade")) {
        if full.matches != off.matches {
            failures.push("the cascade must not change the answer set".into());
        }
        if full.dp_cells > off.dp_cells {
            failures.push("the cascade must not add DP cells".into());
        }
        if full.exact_started > off.exact_started {
            failures.push("the cascade must not add exact DTW starts".into());
        }
    } else {
        failures.push("missing cascade rows".into());
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ablations_hold() {
        let out = run(&Params::quick());
        let failures = check(&out);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(out.backends.len(), 3);
        assert_eq!(out.transforms.len(), 5);
        assert_eq!(out.builds.len(), 2);
        assert_eq!(out.cascade.len(), 3);
    }

    #[test]
    fn render_covers_all_sections() {
        let out = run(&Params { series: 500, queries: 4, ..Params::paper() });
        let (text, _) = render(&out);
        for section in [
            "Backend comparison",
            "second filter",
            "build strategy",
            "pruning power",
            "Verification cascade",
        ] {
            assert!(text.contains(section), "{section}");
        }
    }
}
