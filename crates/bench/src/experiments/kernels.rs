//! Kernel-layer microbenchmark as a reproducible experiment: each hot
//! kernel of the verification cascade (envelope lower bound, `LB_Improved`
//! second pass, banded DTW) timed as a naive sequential reference vs the
//! kernel layer's blocked scalar and unrolled shapes, plus the conservative
//! f32 prefilter pass against the exact f64 envelope bound it fronts.
//!
//! Two contracts are enforced by the shape check, not just reported:
//!
//! * **Bit-identity** — `KernelMode::Scalar` and `KernelMode::Unrolled`
//!   return identical bits on every candidate, and the prefilter value
//!   never exceeds the exact f64 envelope bound (conservativeness).
//! * **Speedup** — at least one kernel variant reaches ≥ 2× over its
//!   sequential reference. Wall-clock ratios are hardware-dependent, so
//!   this is only enforced at paper scale (where per-variant time is long
//!   enough to be stable), never in `--quick` smoke runs.

use std::time::Instant;

use serde::Serialize;

use hum_core::dtw::{band_for_warping_width, ldtw_distance_sq_bounded_with_mode, DtwWorkspace};
use hum_core::envelope::{lb_improved_tail_sq_mode, Envelope, LbScratch};
use hum_core::kernel::lb::env_lb_sq;
use hum_core::kernel::prefilter::{conservative_lb_sq, PrefilterEnvelope, SeriesMirror};
use hum_core::kernel::KernelMode;
use hum_datasets::{generate, DatasetFamily};

use crate::report::{fmt1, TextTable};

const MODES: [KernelMode; 2] = [KernelMode::Scalar, KernelMode::Unrolled];

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Series length (normal-form length; the paper's pipeline uses 128).
    pub len: usize,
    /// Candidate series per timed pass.
    pub candidates: usize,
    /// Timed passes over the candidate set (best-of to shed scheduler noise).
    pub passes: usize,
    /// Warping width δ as a fraction of the series length.
    pub delta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Enforce the ≥2× speedup expectation in the shape check.
    pub enforce_speedup: bool,
}

impl Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Params { len: 128, candidates: 4_000, passes: 7, delta: 0.1, seed: 99, enforce_speedup: true }
    }

    /// Smoke-test scale; timing ratios are too noisy to gate on.
    pub fn quick() -> Self {
        Params { candidates: 400, passes: 3, enforce_speedup: false, ..Params::paper() }
    }
}

/// One (kernel, variant) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct KernelRow {
    /// Kernel family: `env_lb`, `prefilter`, `lb_improved`, `dtw`.
    pub kernel: String,
    /// Variant: `reference`, `scalar`, `unrolled`.
    pub variant: String,
    /// Nanoseconds per candidate (best pass).
    pub ns_per_call: f64,
    /// Speedup over the same kernel's `reference` row.
    pub speedup: f64,
    /// Whether this variant's outputs were bit-identical to the scalar
    /// kernel shape (for `prefilter`: conservativeness vs the f64 bound).
    pub identical: bool,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Series length.
    pub len: usize,
    /// Candidates per pass.
    pub candidates: usize,
    /// Sakoe-Chiba band half-width used.
    pub band: usize,
    /// Whether the ≥2× expectation is enforced by [`check`].
    pub speedup_enforced: bool,
    /// One row per (kernel, variant).
    pub rows: Vec<KernelRow>,
}

/// Times `passes` runs of `f` and returns ns/candidate for the best pass
/// along with the checksum of the last pass (kept alive so the work cannot
/// be optimized out).
fn time_best(passes: usize, candidates: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut sum = 0.0;
    for _ in 0..passes {
        let started = Instant::now();
        sum = f();
        let ns = started.elapsed().as_nanos() as f64 / candidates as f64;
        best = best.min(ns);
    }
    (best, sum)
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    let database = generate(DatasetFamily::RandomWalk, params.candidates, params.len, params.seed);
    let query = generate(DatasetFamily::RandomWalk, 1, params.len, params.seed ^ 0xabcd).remove(0);
    let band = band_for_warping_width(params.delta, params.len);
    let env = Envelope::compute(&query, band);
    let mut staged = PrefilterEnvelope::new();
    staged.stage(&env);
    let mirrors: Vec<SeriesMirror> =
        database.iter().map(|s| SeriesMirror::build(s)).collect();

    let mut rows = Vec::new();
    let mut push = |kernel: &str, variant: &str, ns: f64, reference_ns: f64, identical: bool| {
        rows.push(KernelRow {
            kernel: kernel.to_string(),
            variant: variant.to_string(),
            ns_per_call: ns,
            speedup: reference_ns / ns.max(1e-9),
            identical,
        });
    };

    // --- Envelope lower bound: branchy one-pass reference vs kernel. ---
    let reference_env = |lower: &[f64], upper: &[f64], x: &[f64]| {
        let mut acc = 0.0;
        for i in 0..x.len() {
            let v = x[i];
            if v > upper[i] {
                acc += (v - upper[i]) * (v - upper[i]);
            } else if v < lower[i] {
                acc += (lower[i] - v) * (lower[i] - v);
            }
        }
        acc
    };
    let (env_ref_ns, _) = time_best(params.passes, params.candidates, || {
        database.iter().map(|s| reference_env(env.lower(), env.upper(), s)).sum()
    });
    push("env_lb", "reference", env_ref_ns, env_ref_ns, true);
    let scalar_bits: Vec<u64> =
        database.iter().map(|s| env_lb_sq(KernelMode::Scalar, env.lower(), env.upper(), s).to_bits()).collect();
    for mode in MODES {
        let (ns, _) = time_best(params.passes, params.candidates, || {
            database.iter().map(|s| env_lb_sq(mode, env.lower(), env.upper(), s)).sum()
        });
        let identical = database
            .iter()
            .zip(&scalar_bits)
            .all(|(s, &want)| env_lb_sq(mode, env.lower(), env.upper(), s).to_bits() == want);
        push("env_lb", &format!("{mode:?}").to_lowercase(), ns, env_ref_ns, identical);
    }

    // --- f32 prefilter pass, against the same f64 reference it fronts. ---
    for mode in MODES {
        let (ns, _) = time_best(params.passes, params.candidates, || {
            mirrors.iter().map(|m| conservative_lb_sq(mode, &staged, m)).sum()
        });
        let conservative = database.iter().zip(&mirrors).all(|(s, m)| {
            let lo = conservative_lb_sq(mode, &staged, m);
            !lo.is_finite() || lo <= env_lb_sq(KernelMode::Scalar, env.lower(), env.upper(), s)
        });
        push("prefilter", &format!("{mode:?}").to_lowercase(), ns, env_ref_ns, conservative);
    }

    // --- LB_Improved second pass (projection + envelope recompute + LB). ---
    let mut scratch = LbScratch::new();
    let lb_bits: Vec<u64> = database
        .iter()
        .map(|s| {
            lb_improved_tail_sq_mode(&query, &env, s, band, f64::INFINITY, &mut scratch, KernelMode::Scalar)
                .to_bits()
        })
        .collect();
    // The scalar shape doubles as this kernel's reference: its dominant
    // cost (deque envelope recompute) predates the kernel layer.
    let mut lb_ref_ns = 0.0;
    for (i, mode) in MODES.iter().enumerate() {
        let (ns, _) = time_best(params.passes, params.candidates, || {
            database
                .iter()
                .map(|s| lb_improved_tail_sq_mode(&query, &env, s, band, f64::INFINITY, &mut scratch, *mode))
                .sum()
        });
        if i == 0 {
            lb_ref_ns = ns;
        }
        let identical = database.iter().zip(&lb_bits).all(|(s, &want)| {
            lb_improved_tail_sq_mode(&query, &env, s, band, f64::INFINITY, &mut scratch, *mode)
                .to_bits()
                == want
        });
        push("lb_improved", &format!("{mode:?}").to_lowercase(), ns, lb_ref_ns, identical);
    }

    // --- Banded DTW with early abandonment disabled (full band). ---
    let mut ws = DtwWorkspace::new();
    let dtw_bits: Vec<u64> = database
        .iter()
        .map(|s| {
            ldtw_distance_sq_bounded_with_mode(&mut ws, &query, s, band, f64::INFINITY, KernelMode::Scalar)
                .to_bits()
        })
        .collect();
    let mut dtw_ref_ns = f64::NAN;
    for (i, mode) in MODES.iter().enumerate() {
        let (ns, _) = time_best(params.passes, params.candidates, || {
            database
                .iter()
                .map(|s| {
                    ldtw_distance_sq_bounded_with_mode(&mut ws, &query, s, band, f64::INFINITY, *mode)
                })
                .sum()
        });
        if i == 0 {
            dtw_ref_ns = ns;
        }
        let identical = database.iter().zip(&dtw_bits).all(|(s, &want)| {
            ldtw_distance_sq_bounded_with_mode(&mut ws, &query, s, band, f64::INFINITY, *mode)
                .to_bits()
                == want
        });
        push("dtw", &format!("{mode:?}").to_lowercase(), ns, dtw_ref_ns, identical);
    }

    Output {
        len: params.len,
        candidates: params.candidates,
        band,
        speedup_enforced: params.enforce_speedup,
        rows,
    }
}

/// Renders the per-kernel table.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut table = TextTable::new(vec!["kernel", "variant", "ns/call", "speedup", "identical"]);
    for row in &output.rows {
        table.row(vec![
            row.kernel.clone(),
            row.variant.clone(),
            fmt1(row.ns_per_call),
            format!("{:.2}x", row.speedup),
            if row.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let text = format!(
        "Kernel-layer microbenchmarks (len {}, {} candidates, band k={})\n\
         speedup is vs the kernel's own reference row; `prefilter` rows are\n\
         vs the exact f64 envelope bound they front, and their identical\n\
         column asserts conservativeness (prefilter value ≤ f64 bound)\n\n{}",
        output.len,
        output.candidates,
        output.band,
        table.render()
    );
    (text, table)
}

/// Shape checks: bit-identity/conservativeness always; the ≥2× speedup only
/// when the run was configured to enforce it (paper scale).
pub fn check(output: &Output) -> Vec<String> {
    let mut failures = Vec::new();
    for row in &output.rows {
        if !row.identical {
            failures.push(format!(
                "{}/{}: outputs deviate from the scalar kernel bits",
                row.kernel, row.variant
            ));
        }
    }
    if output.speedup_enforced {
        let best = output
            .rows
            .iter()
            .filter(|r| r.variant != "reference")
            .map(|r| r.speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        if best < 2.0 {
            failures.push(format!(
                "no kernel variant reached 2x over its reference (best {best:.2}x)"
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_bit_identical_across_variants() {
        let out = run(&Params::quick());
        assert!(out.rows.iter().all(|r| r.identical), "{out:?}");
        assert!(check(&out).is_empty());
        assert_eq!(out.rows.len(), 9);
    }

    #[test]
    fn render_reports_every_row() {
        let out = run(&Params { candidates: 64, passes: 1, ..Params::quick() });
        let (text, table) = render(&out);
        assert!(text.contains("ns/call"));
        assert_eq!(table.to_csv().lines().count(), out.rows.len() + 1);
    }
}
