//! Batched-query throughput: queries/sec versus worker-thread count and
//! chunk size on the Fig-9-scale music workload (melody database at normal
//! length 128, 8 reduced dimensions, R\*-tree), driven through the system
//! layer's `query_series_batch`.
//!
//! The batch layer's contract is that parallelism changes *only* wall-clock
//! time: every row's matches and counters are compared bit-for-bit against
//! the sequential baseline, and the experiment fails its shape check if any
//! row deviates. Speedup is hardware-dependent, so the ≥2× expectation at 8
//! threads is only enforced when the machine actually has 8 hardware
//! threads.

use std::time::Instant;

use serde::Serialize;

use hum_core::batch::BatchOptions;
use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::generate_hums;
use hum_qbh::system::{QbhConfig, QbhSystem};

use crate::report::{fmt1, fmt3, TextTable};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Database melodies (Fig 9 scale: 35,000).
    pub melodies: usize,
    /// Hummed queries per batch.
    pub queries: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Worker-thread counts to sweep.
    pub thread_counts: Vec<usize>,
    /// Chunk sizes to sweep.
    pub chunk_sizes: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Params {
            melodies: 35_000,
            queries: 200,
            k: 10,
            thread_counts: vec![1, 2, 4, 8],
            chunk_sizes: vec![1, 8, 32],
            seed: 23,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params {
            melodies: 2_000,
            queries: 12,
            thread_counts: vec![1, 2, 8],
            chunk_sizes: vec![4],
            ..Params::paper()
        }
    }
}

/// One (threads, chunk size) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    /// Worker threads.
    pub threads: usize,
    /// Queries per chunk.
    pub chunk_size: usize,
    /// Wall-clock seconds for the whole batch.
    pub secs: f64,
    /// Queries per second.
    pub qps: f64,
    /// Speedup over the sequential baseline.
    pub speedup: f64,
    /// Whether matches and counters were bit-identical to the sequential
    /// baseline (the determinism contract).
    pub identical: bool,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Database size.
    pub melodies: usize,
    /// Batch size.
    pub queries: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Hardware threads available during the run.
    pub hardware_threads: usize,
    /// Sequential (loop of single queries) queries/sec baseline.
    pub baseline_qps: f64,
    /// One row per (threads, chunk size) pair.
    pub rows: Vec<ThroughputRow>,
}

/// Runs the experiment.
pub fn run(params: &Params) -> Output {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: params.melodies.div_ceil(20),
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let hums: Vec<Vec<f64>> =
        generate_hums(&db, SingerProfile::good(), params.queries, params.seed)
            .into_iter()
            .map(|h| h.series)
            .collect();

    // Sequential baseline: a plain loop of single queries, which the batch
    // layer must reproduce bit for bit.
    let started = Instant::now();
    let baseline: Vec<_> = hums.iter().map(|h| system.query_series(h, params.k)).collect();
    let baseline_secs = started.elapsed().as_secs_f64();
    let baseline_qps = params.queries as f64 / baseline_secs.max(1e-9);

    let mut rows = Vec::new();
    for &threads in &params.thread_counts {
        for &chunk_size in &params.chunk_sizes {
            let options = BatchOptions::new(threads, chunk_size);
            let started = Instant::now();
            let results = system.query_series_batch(&hums, params.k, &options);
            let secs = started.elapsed().as_secs_f64();
            let qps = params.queries as f64 / secs.max(1e-9);
            rows.push(ThroughputRow {
                threads,
                chunk_size,
                secs,
                qps,
                speedup: qps / baseline_qps.max(1e-9),
                identical: results == baseline,
            });
        }
    }
    Output {
        melodies: db.len().min(params.melodies),
        queries: params.queries,
        k: params.k,
        hardware_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        baseline_qps,
        rows,
    }
}

/// Renders the throughput table.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut table =
        TextTable::new(vec!["threads", "chunk", "secs", "queries/sec", "speedup", "identical"]);
    for row in &output.rows {
        table.row(vec![
            row.threads.to_string(),
            row.chunk_size.to_string(),
            fmt3(row.secs),
            fmt1(row.qps),
            format!("{:.2}x", row.speedup),
            if row.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let text = format!(
        "Batched-query throughput ({} melodies, {} k-NN queries/batch, k={}, {} hardware threads)\n\
         Sequential baseline: {:.1} queries/sec\n\n{}",
        output.melodies,
        output.queries,
        output.k,
        output.hardware_threads,
        output.baseline_qps,
        table.render()
    );
    (text, table)
}

/// Shape checks: determinism always; speedup only where the hardware can
/// express it.
pub fn check(output: &Output) -> Vec<String> {
    let mut failures = Vec::new();
    for row in &output.rows {
        if !row.identical {
            failures.push(format!(
                "threads={} chunk={}: batch results deviate from the sequential baseline",
                row.threads, row.chunk_size
            ));
        }
    }
    let best_at = |threads: usize| {
        output
            .rows
            .iter()
            .filter(|r| r.threads == threads)
            .map(|r| r.speedup)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    if output.hardware_threads >= 8 && output.rows.iter().any(|r| r.threads == 8) {
        let speedup = best_at(8);
        if speedup < 2.0 {
            failures.push(format!(
                "8 threads on {}-thread hardware only reached {speedup:.2}x (expected >= 2x)",
                output.hardware_threads
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_deterministic_across_thread_counts() {
        let out = run(&Params::quick());
        assert_eq!(out.rows.len(), 3);
        assert!(out.rows.iter().all(|r| r.identical), "{out:?}");
        let failures = check(&out);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn render_reports_every_row() {
        let out = run(&Params { melodies: 400, queries: 4, ..Params::quick() });
        let (text, table) = render(&out);
        assert!(text.contains("queries/sec"));
        assert_eq!(table.to_csv().lines().count(), out.rows.len() + 1);
    }
}
