//! `obs` — the cascade-trajectory demonstration: the Figure-9 workload
//! (large MIDI music database, ε-range queries) re-run with the library's
//! own observability layer turned on.
//!
//! Every query executes with a [`QueryTrace`]; per grid point the traces
//! are aggregated into one trajectory row — candidates in → envelope-LB
//! pruned → `LB_Improved` pruned → early-abandoned → verified, plus DP
//! cells, matches, and page accesses — and each row records whether the
//! aggregated trace totals equal the batch's merged `EngineStats` (the
//! tentpole's no-silent-drift contract). The registry snapshot at the end
//! renders through the same text/JSON exporters production would use, so
//! this table is regenerated from shipped instrumentation, not bench-only
//! bookkeeping.

use serde::Serialize;

use hum_core::batch::BatchOptions;
use hum_core::dtw::band_for_warping_width;
use hum_core::engine::{DtwIndexEngine, EngineConfig, QueryRequest};
use hum_core::normal::NormalForm;
use hum_core::obs::{metrics_to_text, MetricsSink, MetricsSnapshot, QueryKind, QueryTrace};
use hum_core::transform::paa::NewPaa;
use hum_index::RStarTree;
use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::generate_hums;

use crate::experiments::sweep::{paper_widths, THRESHOLDS};
use crate::report::TextTable;

/// Experiment parameters (the Figure-9 workload).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Total melodies (paper: 35,000).
    pub melodies: usize,
    /// Normal-form length (paper: 128).
    pub length: usize,
    /// Feature dimensions (paper: 8).
    pub dims: usize,
    /// Hum queries per grid point.
    pub queries: usize,
    /// Warping widths to sweep.
    pub width_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Params { melodies: 35_000, length: 128, dims: 8, queries: 100, width_steps: 10, seed: 9 }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Params { melodies: 2_000, queries: 10, width_steps: 4, ..Params::paper() }
    }
}

/// One grid point's aggregated cascade trajectory (totals over all queries
/// at that point — totals, not means, so they compare exactly against the
/// engine's counters).
#[derive(Debug, Clone, Serialize)]
pub struct TrajectoryRow {
    /// Threshold ε (range radius = √(n·ε)).
    pub threshold: f64,
    /// Warping width δ.
    pub warping_width: f64,
    /// Queries aggregated.
    pub queries: u64,
    /// Index pages (nodes) read.
    pub page_accesses: u64,
    /// Candidates entering the verification cascade.
    pub candidates: u64,
    /// Removed by the envelope lower bound.
    pub lb_pruned: u64,
    /// Removed by `LB_Improved`.
    pub lb_improved_pruned: u64,
    /// Exact DTW evaluations started.
    pub exact_started: u64,
    /// Abandoned by the radius threshold.
    pub early_abandoned: u64,
    /// Run to completion.
    pub verified: u64,
    /// DP cells evaluated.
    pub dp_cells: u64,
    /// Matches returned.
    pub matches: u64,
    /// The drift contract: aggregated trace totals == merged `EngineStats`.
    pub totals_match_stats: bool,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Database size.
    pub melodies: usize,
    /// Queries per grid point.
    pub queries: usize,
    /// One row per (threshold, width) grid point.
    pub rows: Vec<TrajectoryRow>,
    /// The registry at the end of the run, through the library exporter.
    pub metrics: MetricsSnapshot,
}

/// Runs the traced Figure-9 workload.
pub fn run(params: &Params) -> Output {
    let songs = params.melodies.div_ceil(20);
    let db = MelodyDatabase::from_midi_roundtrip(&SongbookConfig {
        songs,
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    let normal = NormalForm::with_length(params.length);
    let database: Vec<Vec<f64>> = db
        .entries()
        .iter()
        .take(params.melodies)
        .map(|e| normal.apply(&e.melody().to_time_series(4)))
        .collect();
    let queries: Vec<Vec<f64>> =
        generate_hums(&db, SingerProfile::good(), params.queries, params.seed)
            .into_iter()
            .map(|h| normal.apply(&h.series))
            .collect();

    let n = params.length;
    let mut engine = DtwIndexEngine::new(
        NewPaa::new(n, params.dims),
        RStarTree::with_page_size(params.dims, 4096),
        EngineConfig::default(),
    )
    .with_metrics(MetricsSink::enabled());
    for (i, s) in database.iter().enumerate() {
        engine.insert(i as u64, s.clone());
    }

    let widths: Vec<f64> = paper_widths().into_iter().take(params.width_steps).collect();
    let mut rows = Vec::with_capacity(THRESHOLDS.len() * widths.len());
    for &threshold in &THRESHOLDS {
        let radius = (n as f64 * threshold).sqrt();
        for &width in &widths {
            let band = band_for_warping_width(width, n);
            let requests: Vec<QueryRequest> = queries
                .iter()
                .map(|q| {
                    QueryRequest::range(radius).with_series(q.clone()).with_band(band).with_trace(true)
                })
                .collect();
            let batch = engine
                .try_query_batch(&requests, &BatchOptions::default())
                .expect("validated workload");
            let mut total = QueryTrace::zero(QueryKind::Range, band);
            for outcome in &batch.outcomes {
                total.absorb(&outcome.trace.expect("all requests traced"));
            }
            rows.push(TrajectoryRow {
                threshold,
                warping_width: width,
                queries: queries.len() as u64,
                page_accesses: total.index.pages(),
                candidates: total.candidates_in,
                lb_pruned: total.lb_pruned,
                lb_improved_pruned: total.lb_improved_pruned,
                exact_started: total.exact_started,
                early_abandoned: total.early_abandoned,
                verified: total.verified,
                dp_cells: total.dp_cells,
                matches: total.matches,
                totals_match_stats: total.totals() == batch.stats,
            });
        }
    }

    let metrics = engine.metrics().registry().expect("metrics enabled").snapshot();
    Output { melodies: database.len(), queries: params.queries, rows, metrics }
}

/// Renders the trajectory table and the registry snapshot.
pub fn render(output: &Output) -> (String, TextTable) {
    let mut table = TextTable::new(vec![
        "threshold".to_string(),
        "width".to_string(),
        "pages".to_string(),
        "candidates".to_string(),
        "env pruned".to_string(),
        "LBimp pruned".to_string(),
        "abandoned".to_string(),
        "verified".to_string(),
        "dp cells".to_string(),
        "matches".to_string(),
        "consistent".to_string(),
    ]);
    for r in &output.rows {
        table.row(vec![
            format!("{:.1}", r.threshold),
            format!("{:.2}", r.warping_width),
            r.page_accesses.to_string(),
            r.candidates.to_string(),
            r.lb_pruned.to_string(),
            r.lb_improved_pruned.to_string(),
            r.early_abandoned.to_string(),
            r.verified.to_string(),
            r.dp_cells.to_string(),
            r.matches.to_string(),
            if r.totals_match_stats { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let text = format!(
        "Observability: cascade trajectories for the Figure-9 workload\n\
         ({} melodies, {} hums per grid point; totals per point)\n\n{}\n\
         Metrics registry after the run:\n{}",
        output.melodies,
        output.queries,
        table.render(),
        metrics_to_text(&output.metrics)
    );
    (text, table)
}

/// Qualitative checks: the drift contract holds everywhere, the range-path
/// funnel closes exactly, and index work is visible whenever candidates
/// are.
pub fn check(output: &Output) -> Vec<String> {
    let mut failures = Vec::new();
    for r in &output.rows {
        let point = format!("eps={:.1} delta={:.2}", r.threshold, r.warping_width);
        if !r.totals_match_stats {
            failures.push(format!("{point}: trace totals drifted from EngineStats"));
        }
        if r.lb_pruned + r.lb_improved_pruned + r.exact_started != r.candidates {
            failures.push(format!("{point}: cascade funnel does not close"));
        }
        if r.verified != r.exact_started - r.early_abandoned {
            failures.push(format!("{point}: verified != started - abandoned"));
        }
        if r.candidates > 0 && r.page_accesses == 0 {
            failures.push(format!("{point}: candidates without page accesses"));
        }
        if r.matches > r.verified {
            failures.push(format!("{point}: more matches than verified candidates"));
        }
    }
    let traced: u64 = output.rows.iter().map(|r| r.queries).sum();
    if output.metrics.counter(hum_core::obs::Metric::RangeQueries) != traced {
        failures.push("registry query count disagrees with the workload".to_string());
    }
    if output.metrics.counter(hum_core::obs::Metric::DpCells)
        != output.rows.iter().map(|r| r.dp_cells).sum::<u64>()
    {
        failures.push("registry dp_cells disagree with summed trajectories".to_string());
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_fully_consistent() {
        let out = run(&Params::quick());
        assert_eq!(out.melodies, 2_000);
        assert_eq!(out.rows.len(), 2 * 4);
        let failures = check(&out);
        assert!(failures.is_empty(), "{failures:?}");
        let (text, table) = render(&out);
        assert!(text.contains("cascade.dp_cells"));
        assert_eq!(table.render().lines().count(), 2 + out.rows.len());
    }
}
