//! Reproduction harness for every table and figure in the paper's
//! evaluation (§5), plus shared reporting utilities.
//!
//! Each experiment lives in [`experiments`] with a `Params` struct offering
//! `quick()` (seconds, for CI and smoke tests) and `paper()` (the full
//! workload sizes of the paper) presets, a pure `run` function returning a
//! serializable result, and a `render` function producing the table the
//! paper prints. The `repro` binary drives them:
//!
//! ```text
//! cargo run -p hum-bench --bin repro --release -- all          # everything, paper scale
//! cargo run -p hum-bench --bin repro --release -- fig6 --quick # one experiment, small
//! cargo run -p hum-bench --bin repro --release -- extras       # DESIGN.md ablations
//! ```
//!
//! Results are printed to stdout and written as JSON next to the text
//! rendering under `results/`.

pub mod experiments;
pub mod report;
