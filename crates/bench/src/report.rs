//! Plain-text table rendering and result persistence.

use std::fmt::Write as _;
use std::path::Path;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
            }
            let _ = writeln!(out);
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(rule.min(120)));
        for row in &self.rows {
            emit(&mut out, row);
        }
        let _ = cols; // width checked on insert
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let _ = writeln!(out, "{}", self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Writes an experiment's text rendering, CSV, and JSON payload under
/// `dir`, creating it if needed. Failures are reported, not fatal — the
/// primary output channel is stdout.
pub fn persist(dir: &Path, name: &str, text: &str, table: &TextTable, json: &serde_json::Value) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let write = |suffix: &str, contents: &str| {
        let path = dir.join(format!("{name}.{suffix}"));
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    };
    write("txt", text);
    write("csv", &table.to_csv());
    write("json", &serde_json::to_string_pretty(json).expect("serializable results"));
}

/// Renders accumulated [`EngineStats`] per configuration as a table: one
/// row per labelled stats bundle, one column per verification-cascade
/// counter. Used by the cascade ablation and available to any experiment
/// that wants to show where candidates die.
///
/// [`EngineStats`]: hum_core::engine::EngineStats
pub fn cascade_table<'a, L: AsRef<str>>(
    rows: impl IntoIterator<Item = (L, &'a hum_core::engine::EngineStats)>,
) -> TextTable {
    let mut table = TextTable::new(vec![
        "config",
        "candidates",
        "lb_pruned",
        "lb_improved_pruned",
        "exact_started",
        "early_abandoned",
        "dp_cells",
        "matches",
    ]);
    for (label, s) in rows {
        table.row(vec![
            label.as_ref().to_string(),
            s.index.candidates.to_string(),
            s.lb_pruned.to_string(),
            s.lb_improved_pruned.to_string(),
            s.exact_computations.to_string(),
            s.early_abandoned.to_string(),
            s.dp_cells.to_string(),
            s.matches.to_string(),
        ]);
    }
    table
}

/// Formats a float with three significant decimals for table cells.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with one decimal for count-style table cells.
pub fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        // All data lines start their second column at the same offset.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find('2').unwrap(), col);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn cascade_table_lists_every_counter() {
        let mut stats = hum_core::engine::EngineStats::default();
        stats.index.candidates = 10;
        stats.lb_pruned = 4;
        stats.lb_improved_pruned = 2;
        stats.exact_computations = 4;
        stats.early_abandoned = 1;
        stats.dp_cells = 1234;
        stats.matches = 3;
        let t = cascade_table([("full cascade", &stats)]);
        let s = t.render();
        for needle in ["full cascade", "1234", "lb_improved_pruned", "early_abandoned"] {
            assert!(s.contains(needle), "{needle} missing from:\n{s}");
        }
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(0.123456), "0.123");
        assert_eq!(fmt1(17.26), "17.3");
    }
}
