//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * envelope second filter on/off in the query engine,
//! * monotonic-deque envelope vs a naive windowed scan,
//! * banded vs full edit distance in the contour baseline,
//! * pitch-tracking cost per second of audio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hum_audio::{track_pitch, track_pitch_hps, HumNote, HumSynthesizer, PitchTrackerConfig, SynthConfig};
use hum_core::dtw::band_for_warping_width;
use hum_core::engine::{DtwIndexEngine, EngineConfig, QueryRequest};
use hum_core::envelope::Envelope;
use hum_core::transform::paa::NewPaa;
use hum_datasets::{generate, DatasetFamily};
use hum_index::RStarTree;
use hum_music::contour::{banded_edit_distance, edit_distance};
use std::hint::black_box;

fn bench_envelope_refinement(c: &mut Criterion) {
    const LEN: usize = 128;
    let database: Vec<Vec<f64>> = generate(DatasetFamily::RandomWalk, 5_000, LEN, 3)
        .into_iter()
        .map(|s| hum_core::normal::NormalForm::z_normalized(LEN).apply(&s))
        .collect();
    let query = hum_core::normal::NormalForm::z_normalized(LEN)
        .apply(&generate(DatasetFamily::RandomWalk, 1, LEN, 999).remove(0));
    let band = band_for_warping_width(0.1, LEN);
    let radius = (LEN as f64 * 0.8).sqrt();

    let mut group = c.benchmark_group("engine_refinement");
    group.sample_size(10);
    for (name, refine) in [("with_lb_filter", true), ("without_lb_filter", false)] {
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(LEN, 8),
            RStarTree::new(8),
            // Other cascade stages off: this ablation isolates the envelope
            // second filter.
            EngineConfig {
                envelope_refinement: refine,
                lb_improved_refinement: false,
                early_abandon: false,
                ..EngineConfig::default()
            },
        );
        for (i, s) in database.iter().enumerate() {
            engine.insert(i as u64, s.clone());
        }
        group.bench_function(name, |b| {
            b.iter(|| {
                let request =
                    QueryRequest::range(radius).with_series(query.clone()).with_band(band);
                black_box(engine.query(&request))
            })
        });
    }
    group.finish();
}

fn bench_envelope_construction(c: &mut Criterion) {
    let x = generate(DatasetFamily::RandomWalk, 1, 4096, 5).remove(0);
    let k = 64;
    let mut group = c.benchmark_group("envelope_construction_4096");
    group.bench_function("monotonic_deque", |b| {
        b.iter(|| Envelope::compute(black_box(&x), k))
    });
    group.bench_function("naive_window", |b| {
        b.iter(|| {
            let n = x.len();
            let mut lower = Vec::with_capacity(n);
            let mut upper = Vec::with_capacity(n);
            for i in 0..n {
                let lo = i.saturating_sub(k);
                let hi = (i + k).min(n - 1);
                let w = &x[lo..=hi];
                lower.push(w.iter().cloned().fold(f64::INFINITY, f64::min));
                upper.push(w.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
            }
            black_box(Envelope::from_bounds(lower, upper))
        })
    });
    group.finish();
}

fn bench_edit_distance(c: &mut Criterion) {
    let a: Vec<u8> = (0..200).map(|i| b"UuSdD"[i % 5]).collect();
    let b_: Vec<u8> = (0..200).map(|i| b"UuSdD"[(i * 3 + 1) % 5]).collect();
    let mut group = c.benchmark_group("edit_distance_200");
    group.bench_function("full", |bch| {
        bch.iter(|| edit_distance(black_box(&a), black_box(&b_)))
    });
    for band in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("banded", band), &band, |bch, &band| {
            bch.iter(|| banded_edit_distance(black_box(&a), black_box(&b_), band))
        });
    }
    group.finish();
}

fn bench_pitch_tracking(c: &mut Criterion) {
    let synth = HumSynthesizer::new(SynthConfig::default());
    let audio = synth.render(&[
        HumNote { midi: 60.0, seconds: 0.5 },
        HumNote { midi: 64.0, seconds: 0.5 },
    ]);
    let mut group = c.benchmark_group("pitch_tracking");
    group.sample_size(20);
    group.bench_function("autocorrelation", |b| {
        b.iter(|| track_pitch(black_box(&audio), &PitchTrackerConfig::default()))
    });
    group.bench_function("harmonic_product_spectrum", |b| {
        b.iter(|| track_pitch_hps(black_box(&audio), &PitchTrackerConfig::default()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_envelope_refinement,
    bench_envelope_construction,
    bench_edit_distance,
    bench_pitch_tracking
);
criterion_main!(benches);
