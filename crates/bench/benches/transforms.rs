//! Micro-benchmarks for the dimensionality-reduction transforms: feature
//! projection, envelope projection (the Lemma 3 sign-split), SVD fitting,
//! and the radix-2 FFT against the naive DFT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hum_core::envelope::Envelope;
use hum_core::transform::dft::Dft;
use hum_core::transform::dwt::Dwt;
use hum_core::transform::paa::{KeoghPaa, NewPaa};
use hum_core::transform::svd::SvdTransform;
use hum_core::transform::EnvelopeTransform;
use hum_datasets::{generate, DatasetFamily};
use hum_linalg::fft::dft_real;
use std::hint::black_box;

const LEN: usize = 256;
const DIMS: usize = 8;

fn transforms() -> Vec<(&'static str, Box<dyn EnvelopeTransform>)> {
    let sample = generate(DatasetFamily::RandomWalk, 64, LEN, 4);
    vec![
        ("new_paa", Box::new(NewPaa::new(LEN, DIMS))),
        ("keogh_paa", Box::new(KeoghPaa::new(LEN, DIMS))),
        ("dft", Box::new(Dft::new(LEN, DIMS))),
        ("dwt", Box::new(Dwt::new(LEN, DIMS))),
        ("svd", Box::new(SvdTransform::fit(&sample, DIMS))),
    ]
}

fn bench_project(c: &mut Criterion) {
    let x = generate(DatasetFamily::RandomWalk, 1, LEN, 7).remove(0);
    let env = Envelope::compute(&x, 12);
    let mut group = c.benchmark_group("transform");
    for (name, t) in transforms() {
        group.bench_function(BenchmarkId::new("project", name), |b| {
            b.iter(|| t.project(black_box(&x)))
        });
        group.bench_function(BenchmarkId::new("project_envelope", name), |b| {
            b.iter(|| t.project_envelope(black_box(&env)))
        });
    }
    group.finish();
}

fn bench_svd_fit(c: &mut Criterion) {
    let sample = generate(DatasetFamily::RandomWalk, 128, 64, 4);
    c.bench_function("svd_fit_128x64", |b| {
        b.iter(|| SvdTransform::fit(black_box(&sample), DIMS))
    });
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    // Power-of-two lengths take the radix-2 path; 250 takes the naive path.
    for len in [250usize, 256, 1024] {
        let x: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| dft_real(black_box(&x)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_project, bench_svd_fit, bench_fft);
criterion_main!(benches);
