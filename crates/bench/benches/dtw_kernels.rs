//! Micro-benchmarks for the distance kernels: banded LDTW vs unconstrained
//! DTW, envelope construction, and the envelope lower bound. Quantifies the
//! O(nk) vs O(n²) gap that motivates Local DTW (paper §4.2), plus the
//! verification-cascade kernels: early abandonment at tight vs loose
//! thresholds and workspace reuse vs per-call allocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hum_core::dtw::{
    band_for_warping_width, dtw_distance_sq, ldtw_distance_sq, ldtw_distance_sq_bounded,
    ldtw_distance_sq_bounded_with, DtwWorkspace,
};
use hum_core::envelope::Envelope;
use hum_datasets::{generate, DatasetFamily};
use std::hint::black_box;

fn series_pair(len: usize) -> (Vec<f64>, Vec<f64>) {
    let mut v = generate(DatasetFamily::RandomWalk, 2, len, 99);
    let b = v.pop().expect("two series");
    let a = v.pop().expect("two series");
    (a, b)
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw");
    for len in [128usize, 256] {
        let (x, y) = series_pair(len);
        group.bench_with_input(BenchmarkId::new("full", len), &len, |b, _| {
            b.iter(|| dtw_distance_sq(black_box(&x), black_box(&y)))
        });
        for delta in [0.05, 0.1, 0.2] {
            let k = band_for_warping_width(delta, len);
            group.bench_with_input(
                BenchmarkId::new(format!("banded_delta_{delta}"), len),
                &len,
                |b, _| b.iter(|| ldtw_distance_sq(black_box(&x), black_box(&y), k)),
            );
        }
    }
    group.finish();
}

fn bench_bounded_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw_bounded");
    for len in [128usize, 256] {
        let (x, y) = series_pair(len);
        let k = band_for_warping_width(0.1, len);
        let exact = ldtw_distance_sq(&x, &y, k);
        // Loose: the threshold never triggers, measuring pure bookkeeping
        // overhead against the unbounded kernel. Tight: the row minimum
        // crosses the threshold early and most of the DP table is skipped.
        for (name, threshold) in [("loose", exact * 2.0), ("tight", exact * 0.05)] {
            group.bench_with_input(BenchmarkId::new(name, len), &len, |b, _| {
                b.iter(|| {
                    ldtw_distance_sq_bounded(black_box(&x), black_box(&y), k, black_box(threshold))
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("unbounded", len), &len, |b, _| {
            b.iter(|| ldtw_distance_sq(black_box(&x), black_box(&y), k))
        });
    }
    group.finish();
}

fn bench_workspace_reuse(c: &mut Criterion) {
    const LEN: usize = 128;
    let database = generate(DatasetFamily::RandomWalk, 64, LEN, 7);
    let query = generate(DatasetFamily::RandomWalk, 1, LEN, 41).remove(0);
    let k = band_for_warping_width(0.1, LEN);
    let mut group = c.benchmark_group("dtw_workspace_64_calls");
    group.bench_function("per_call_allocation", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in &database {
                acc += ldtw_distance_sq(black_box(&query), black_box(s), k);
            }
            acc
        })
    });
    group.bench_function("reused_workspace", |b| {
        let mut ws = DtwWorkspace::new();
        b.iter(|| {
            let mut acc = 0.0;
            for s in &database {
                acc += ldtw_distance_sq_bounded_with(
                    &mut ws,
                    black_box(&query),
                    black_box(s),
                    k,
                    f64::INFINITY,
                );
            }
            acc
        })
    });
    group.finish();
}

fn bench_envelope(c: &mut Criterion) {
    let mut group = c.benchmark_group("envelope");
    for len in [128usize, 256, 1024] {
        let (x, y) = series_pair(len);
        let k = band_for_warping_width(0.1, len);
        group.bench_with_input(BenchmarkId::new("compute_deque", len), &len, |b, _| {
            b.iter(|| Envelope::compute(black_box(&y), k))
        });
        let env = Envelope::compute(&y, k);
        group.bench_with_input(BenchmarkId::new("lb_distance", len), &len, |b, _| {
            b.iter(|| env.distance_sq(black_box(&x)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dtw, bench_bounded_dtw, bench_workspace_reuse, bench_envelope);
criterion_main!(benches);
