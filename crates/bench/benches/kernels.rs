//! Micro-benchmarks for the kernel layer (`hum_core::kernel`): each hot
//! kernel measured as a naive sequential reference vs `KernelMode::Scalar`
//! (blocked, cache-conscious) vs `KernelMode::Unrolled` (explicit 4/8-lane
//! unrolling), plus the conservative f32 prefilter pass against the exact
//! f64 envelope bound it fronts. Build with `--features simd` to make
//! `KernelMode::default()` pick the unrolled shapes engine-wide; here both
//! modes are always measured explicitly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hum_core::dtw::{
    band_for_warping_width, ldtw_distance_sq_bounded_with_mode, DtwWorkspace,
};
use hum_core::envelope::{lb_improved_tail_sq_mode, Envelope, LbScratch};
use hum_core::kernel::lb::env_lb_sq;
use hum_core::kernel::prefilter::{conservative_lb_sq, PrefilterEnvelope, SeriesMirror};
use hum_core::kernel::KernelMode;
use hum_datasets::{generate, DatasetFamily};
use std::hint::black_box;

fn series_pair(len: usize) -> (Vec<f64>, Vec<f64>) {
    let mut v = generate(DatasetFamily::RandomWalk, 2, len, 99);
    let b = v.pop().expect("two series");
    let a = v.pop().expect("two series");
    (a, b)
}

/// Naive one-pass envelope LB: branchy per-element excursion, single
/// running sum — the shape the kernel layer replaced.
fn env_lb_reference(lower: &[f64], upper: &[f64], x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..x.len() {
        let v = x[i];
        if v > upper[i] {
            let d = v - upper[i];
            acc += d * d;
        } else if v < lower[i] {
            let d = lower[i] - v;
            acc += d * d;
        }
    }
    acc
}

fn bench_envelope_lb(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_env_lb");
    for len in [128usize, 1024] {
        let (x, y) = series_pair(len);
        let k = band_for_warping_width(0.1, len);
        let env = Envelope::compute(&y, k);
        group.bench_with_input(BenchmarkId::new("reference", len), &len, |b, _| {
            b.iter(|| env_lb_reference(black_box(env.lower()), black_box(env.upper()), black_box(&x)))
        });
        for mode in [KernelMode::Scalar, KernelMode::Unrolled] {
            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}").to_lowercase(), len),
                &len,
                |b, _| {
                    b.iter(|| {
                        env_lb_sq(mode, black_box(env.lower()), black_box(env.upper()), black_box(&x))
                    })
                },
            );
        }
        let mut staged = PrefilterEnvelope::new();
        staged.stage(&env);
        let mirror = SeriesMirror::build(&x);
        for mode in [KernelMode::Scalar, KernelMode::Unrolled] {
            group.bench_with_input(
                BenchmarkId::new(format!("prefilter_{mode:?}").to_lowercase(), len),
                &len,
                |b, _| b.iter(|| conservative_lb_sq(mode, black_box(&staged), black_box(&mirror))),
            );
        }
    }
    group.finish();
}

fn bench_lb_improved(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_lb_improved");
    for len in [128usize, 1024] {
        let (x, y) = series_pair(len);
        let k = band_for_warping_width(0.1, len);
        let env = Envelope::compute(&x, k);
        for mode in [KernelMode::Scalar, KernelMode::Unrolled] {
            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}").to_lowercase(), len),
                &len,
                |b, _| {
                    let mut scratch = LbScratch::new();
                    b.iter(|| {
                        lb_improved_tail_sq_mode(
                            black_box(&x),
                            &env,
                            black_box(&y),
                            k,
                            f64::INFINITY,
                            &mut scratch,
                            mode,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_dtw_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_dtw");
    for len in [128usize, 256] {
        let (x, y) = series_pair(len);
        let k = band_for_warping_width(0.1, len);
        for mode in [KernelMode::Scalar, KernelMode::Unrolled] {
            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}").to_lowercase(), len),
                &len,
                |b, _| {
                    let mut ws = DtwWorkspace::new();
                    b.iter(|| {
                        ldtw_distance_sq_bounded_with_mode(
                            &mut ws,
                            black_box(&x),
                            black_box(&y),
                            k,
                            f64::INFINITY,
                            mode,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_envelope_lb, bench_lb_improved, bench_dtw_row);
criterion_main!(benches);
