//! End-to-end query latency — the paper's §5.3 timing claim ("from 1 second
//! for the smallest warping width to 10 seconds for the largest" on a
//! Pentium 4): range queries against a 10,000-melody database at increasing
//! warping widths, for the indexed engine vs the brute-force scan the
//! related work used.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hum_core::dtw::band_for_warping_width;
use hum_core::engine::QueryRequest;
use hum_core::normal::NormalForm;
use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::generate_hums;
use hum_qbh::system::{Backend, QbhConfig, QbhSystem, TransformKind};
use std::hint::black_box;

const LEN: usize = 128;

fn setup() -> (QbhSystem, QbhSystem, Vec<Vec<f64>>) {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 500,
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    let indexed = QbhSystem::build(
        &db,
        &QbhConfig { transform: TransformKind::NewPaa.into(), ..QbhConfig::default() },
    );
    let keogh = QbhSystem::build(
        &db,
        &QbhConfig { transform: TransformKind::KeoghPaa.into(), ..QbhConfig::default() },
    );
    let normal = NormalForm::with_length(LEN);
    let queries: Vec<Vec<f64>> = generate_hums(&db, SingerProfile::good(), 4, 5)
        .into_iter()
        .map(|h| normal.apply(&h.series))
        .collect();
    (indexed, keogh, queries)
}

fn bench_range_by_width(c: &mut Criterion) {
    let (new_paa, keogh_paa, queries) = setup();
    let radius = (LEN as f64 * 0.2).sqrt();
    let mut group = c.benchmark_group("range_query_10k_melodies");
    group.sample_size(10);
    for delta in [0.02, 0.1, 0.2] {
        let band = band_for_warping_width(delta, LEN);
        group.bench_with_input(BenchmarkId::new("new_paa", delta), &delta, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(new_paa.engine().query(
                        &QueryRequest::range(radius).with_series(q.clone()).with_band(band),
                    ));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("keogh_paa", delta), &delta, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(keogh_paa.engine().query(
                        &QueryRequest::range(radius).with_series(q.clone()).with_band(band),
                    ));
                }
            })
        });
    }
    // The brute-force comparator ("clearly a brute-force approach and it is
    // very slow", Mazzoni & Dannenberg via paper §2) at one width.
    let band = band_for_warping_width(0.1, LEN);
    group.bench_function("brute_force_scan", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(new_paa.engine().scan_range(q, band, radius));
            }
        })
    });
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let (new_paa, _, queries) = setup();
    let mut group = c.benchmark_group("knn10_10k_melodies");
    group.sample_size(10);
    let band = band_for_warping_width(0.1, LEN);
    group.bench_function("indexed", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(
                    new_paa
                        .engine()
                        .query(&QueryRequest::knn(10).with_series(q.clone()).with_band(band)),
                );
            }
        })
    });
    group.bench_function("scan", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(new_paa.engine().scan_knn(q, band, 10));
            }
        })
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_build");
    group.sample_size(10);
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 100,
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    for backend in [Backend::RStar, Backend::Grid] {
        group.bench_with_input(
            BenchmarkId::new("2k_melodies", format!("{backend:?}")),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    QbhSystem::build(&db, &QbhConfig { backend, ..QbhConfig::default() })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_range_by_width, bench_knn, bench_build);
criterion_main!(benches);
