//! Micro-benchmarks for the spatial-index backends: build, range query, and
//! k-NN over 10,000 feature vectors in 8 dimensions (the configuration of
//! the paper's large-database experiments).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hum_index::{GridFile, LinearScan, Query, RStarTree, Rect, SpatialIndex};
use std::hint::black_box;

const DIMS: usize = 8;
const N: usize = 10_000;

fn points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
    };
    (0..n).map(|_| (0..DIMS).map(|_| next()).collect()).collect()
}

fn built<T: SpatialIndex>(mut index: T, pts: &[Vec<f64>]) -> T {
    for (i, p) in pts.iter().enumerate() {
        index.insert(i as u64, p.clone());
    }
    index
}

fn bench_build(c: &mut Criterion) {
    let pts = points(N, 1);
    let mut group = c.benchmark_group("index_build_10k");
    group.sample_size(10);
    group.bench_function("rstar", |b| {
        b.iter_batched(
            || pts.clone(),
            |pts| built(RStarTree::new(DIMS), &pts),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("gridfile", |b| {
        b.iter_batched(
            || pts.clone(),
            |pts| built(GridFile::new(DIMS), &pts),
            BatchSize::LargeInput,
        )
    });
    // Ablation: STR bulk loading vs one-at-a-time insertion.
    group.bench_function("rstar_bulk_load", |b| {
        b.iter_batched(
            || pts.iter().enumerate().map(|(i, p)| (i as u64, p.clone())).collect::<Vec<_>>(),
            |items| RStarTree::bulk_load(DIMS, 4096, items),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let pts = points(N, 1);
    let rstar = built(RStarTree::new(DIMS), &pts);
    let grid = built(GridFile::new(DIMS), &pts);
    let linear = built(LinearScan::new(DIMS), &pts);
    let point_q = Query::Point(points(1, 77).remove(0));
    let rect_q = {
        let center = points(1, 78).remove(0);
        let lo: Vec<f64> = center.iter().map(|v| v - 1.0).collect();
        let hi: Vec<f64> = center.iter().map(|v| v + 1.0).collect();
        Query::Rect(Rect::new(lo, hi))
    };

    let mut group = c.benchmark_group("index_query_10k");
    let backends: Vec<(&str, &dyn SpatialIndex)> =
        vec![("rstar", &rstar), ("gridfile", &grid), ("linear", &linear)];
    for (name, index) in backends {
        group.bench_function(BenchmarkId::new("range_point", name), |b| {
            b.iter(|| index.range_query(black_box(&point_q), 3.0))
        });
        group.bench_function(BenchmarkId::new("range_rect", name), |b| {
            b.iter(|| index.range_query(black_box(&rect_q), 2.0))
        });
        group.bench_function(BenchmarkId::new("knn10", name), |b| {
            b.iter(|| index.knn(black_box(&point_q), 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
