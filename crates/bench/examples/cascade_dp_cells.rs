//! Measures the DP-cell cost of verification on the Fig 9 workload
//! (35,000 melodies from the MIDI pipeline, length 128, δ = 0.1, ε = 0.2,
//! hum queries) with the verification cascade on vs off. Run with
//! `--release`.

use hum_bench::report::cascade_table;
use hum_core::dtw::band_for_warping_width;
use hum_core::engine::{DtwIndexEngine, EngineConfig, EngineStats, QueryRequest};
use hum_core::normal::NormalForm;
use hum_core::transform::paa::NewPaa;
use hum_index::RStarTree;
use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::generate_hums;

fn main() {
    let (melodies, length, dims, queries, seed) = (35_000usize, 128usize, 8usize, 20usize, 9u64);
    let (delta, eps) = (0.1, 0.2);
    let band = band_for_warping_width(delta, length);
    let radius = (length as f64 * eps).sqrt();

    let db = MelodyDatabase::from_midi_roundtrip(&SongbookConfig {
        songs: melodies.div_ceil(20),
        phrases_per_song: 20,
        ..SongbookConfig::default()
    });
    let normal = NormalForm::with_length(length);
    let database: Vec<Vec<f64>> = db
        .entries()
        .iter()
        .take(melodies)
        .map(|e| normal.apply(&e.melody().to_time_series(4)))
        .collect();
    let query_set: Vec<Vec<f64>> = generate_hums(&db, SingerProfile::good(), queries, seed)
        .into_iter()
        .map(|h| normal.apply(&h.series))
        .collect();

    let mut rows = Vec::new();
    for (name, config) in [
        ("no cascade", EngineConfig {
            envelope_refinement: false,
            lb_improved_refinement: false,
            early_abandon: false,
            ..EngineConfig::default()
        }),
        ("full cascade", EngineConfig::default()),
    ] {
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(length, dims),
            RStarTree::with_page_size(dims, 4096),
            config,
        );
        for (i, s) in database.iter().enumerate() {
            engine.insert(i as u64, s.clone());
        }
        let mut total = EngineStats::default();
        for q in &query_set {
            let request = QueryRequest::range(radius).with_series(q.clone()).with_band(band);
            total.absorb(&engine.query(&request).result.stats);
        }
        rows.push((name.to_string(), total));
    }

    println!(
        "Fig 9 workload: {} melodies, len {length}, delta={delta}, eps={eps}, {queries} hums\n",
        database.len()
    );
    println!("{}", cascade_table(rows.iter().map(|(l, s)| (l.as_str(), s))).render());
    let (off, on) = (&rows[0].1, &rows[1].1);
    println!(
        "DP-cell reduction: {:.2}x (matches {} vs {})",
        off.dp_cells as f64 / on.dp_cells.max(1) as f64,
        off.matches,
        on.matches
    );
}
