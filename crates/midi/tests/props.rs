//! Property-based tests: arbitrary well-formed SMF structures round-trip
//! through the writer and reader byte-identically, and melodies survive the
//! serialize → parse → extract pipeline.

use hum_midi::{extract_melody, parse_smf, write_smf, Event, MetaEvent, Smf, Track};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u8..16, 0u8..128, 1u8..128)
            .prop_map(|(channel, key, velocity)| Event::NoteOn { channel, key, velocity }),
        (0u8..16, 0u8..128, 0u8..128)
            .prop_map(|(channel, key, velocity)| Event::NoteOff { channel, key, velocity }),
        (0u8..16, 0u8..128)
            .prop_map(|(channel, program)| Event::ProgramChange { channel, program }),
        (1u32..0xFFFFFF).prop_map(|t| Event::Meta(MetaEvent::Tempo(t))),
        "[a-zA-Z0-9 ]{0,20}".prop_map(|s| Event::Meta(MetaEvent::TrackName(s))),
        // Exclude the kinds with dedicated variants (0x03 track name,
        // 0x2F end of track, 0x51 tempo) so the round trip is identity.
        (0u8..0x2F, proptest::collection::vec(any::<u8>(), 0..16))
            .prop_filter("reserved meta kind", |(kind, _)| *kind != 0x03)
            .prop_map(|(kind, data)| Event::Meta(MetaEvent::Other { kind, data })),
        (proptest::collection::vec(0u8..128, 2..=2))
            .prop_map(|data| Event::Other { status: 0xB3, data }),
    ]
}

fn arb_track() -> impl Strategy<Value = Track> {
    proptest::collection::vec((0u32..100_000, arb_event()), 0..40).prop_map(|events| {
        let mut track = Track::default();
        for (delta, event) in events {
            track.push(delta, event);
        }
        track.push(0, Event::Meta(MetaEvent::EndOfTrack));
        track
    })
}

fn arb_smf() -> impl Strategy<Value = Smf> {
    (0u16..=1, 1u16..0x7FFF, proptest::collection::vec(arb_track(), 1..4)).prop_map(
        |(format, tpq, tracks)| {
            let format = if tracks.len() > 1 { 1 } else { format };
            let mut smf = Smf::new(format, tpq);
            smf.tracks = tracks;
            smf
        },
    )
}

fn arb_melody_events() -> impl Strategy<Value = Vec<(u8, u32)>> {
    proptest::collection::vec((40u8..90, 60u32..2000), 1..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn smf_roundtrip_is_lossless(smf in arb_smf()) {
        let bytes = write_smf(&smf);
        let parsed = parse_smf(&bytes).expect("own output must parse");
        prop_assert_eq!(parsed, smf);
    }

    #[test]
    fn melody_survives_the_pipeline(notes in arb_melody_events(), tpq in 96u16..960) {
        let mut smf = Smf::new(0, tpq);
        let mut track = Track::default();
        for &(key, ticks) in &notes {
            track.push(0, Event::NoteOn { channel: 0, key, velocity: 90 });
            track.push(ticks, Event::NoteOff { channel: 0, key, velocity: 0 });
        }
        smf.tracks.push(track);
        let parsed = parse_smf(&write_smf(&smf)).unwrap();
        let melody = extract_melody(&parsed, 0);
        prop_assert_eq!(melody.len(), notes.len());
        for (got, &(key, ticks)) in melody.iter().zip(&notes) {
            prop_assert_eq!(got.pitch, key);
            let expect_beats = ticks as f64 / tpq as f64;
            prop_assert!((got.beats - expect_beats).abs() < 1e-9);
        }
    }

    #[test]
    fn parser_never_panics_on_mutated_bytes(
        smf in arb_smf(),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = write_smf(&smf);
        for (idx, val) in flips {
            let at = idx.index(bytes.len());
            bytes[at] = val;
        }
        // Must return Ok or Err — never panic, never loop.
        let _ = parse_smf(&bytes);
    }

    #[test]
    fn parser_never_panics_on_truncation(smf in arb_smf(), cut in any::<prop::sample::Index>()) {
        let bytes = write_smf(&smf);
        let at = cut.index(bytes.len());
        let _ = parse_smf(&bytes[..at]);
    }
}
