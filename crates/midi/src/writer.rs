//! SMF serialization.

use crate::event::{Event, MetaEvent, Smf, Track};
use crate::vlq::write_vlq;

/// Serializes a file to SMF bytes.
///
/// Tracks that do not end in an End-of-Track meta event get one appended at
/// delta 0, as the specification requires.
pub fn write_smf(smf: &Smf) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + smf.event_count() * 4);
    out.extend_from_slice(b"MThd");
    out.extend_from_slice(&6u32.to_be_bytes());
    out.extend_from_slice(&smf.format.to_be_bytes());
    out.extend_from_slice(&(smf.tracks.len() as u16).to_be_bytes());
    out.extend_from_slice(&smf.ticks_per_quarter.to_be_bytes());
    for track in &smf.tracks {
        write_track(track, &mut out);
    }
    out
}

fn write_track(track: &Track, out: &mut Vec<u8>) {
    let mut body = Vec::with_capacity(track.events.len() * 4 + 4);
    let mut has_eot = false;
    for te in &track.events {
        write_vlq(te.delta, &mut body);
        write_event(&te.event, &mut body);
        if matches!(te.event, Event::Meta(MetaEvent::EndOfTrack)) {
            has_eot = true;
            break; // nothing may follow end-of-track
        }
    }
    if !has_eot {
        write_vlq(0, &mut body);
        write_event(&Event::Meta(MetaEvent::EndOfTrack), &mut body);
    }
    out.extend_from_slice(b"MTrk");
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
}

fn write_event(event: &Event, out: &mut Vec<u8>) {
    match event {
        Event::NoteOn { channel, key, velocity } => {
            out.push(0x90 | (channel & 0x0F));
            out.push(key & 0x7F);
            out.push(velocity & 0x7F);
        }
        Event::NoteOff { channel, key, velocity } => {
            out.push(0x80 | (channel & 0x0F));
            out.push(key & 0x7F);
            out.push(velocity & 0x7F);
        }
        Event::ProgramChange { channel, program } => {
            out.push(0xC0 | (channel & 0x0F));
            out.push(program & 0x7F);
        }
        Event::Meta(meta) => {
            out.push(0xFF);
            match meta {
                MetaEvent::Tempo(us_per_quarter) => {
                    out.push(0x51);
                    out.push(3);
                    let b = us_per_quarter.to_be_bytes();
                    out.extend_from_slice(&b[1..4]);
                }
                MetaEvent::TrackName(name) => {
                    out.push(0x03);
                    write_vlq(name.len() as u32, out);
                    out.extend_from_slice(name.as_bytes());
                }
                MetaEvent::EndOfTrack => {
                    out.push(0x2F);
                    out.push(0);
                }
                MetaEvent::Other { kind, data } => {
                    out.push(*kind);
                    write_vlq(data.len() as u32, out);
                    out.extend_from_slice(data);
                }
            }
        }
        Event::Other { status, data } => {
            out.push(*status);
            out.extend_from_slice(data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TrackEvent;

    fn one_note_file() -> Smf {
        let mut smf = Smf::new(0, 480);
        let mut track = Track::default();
        track.push(0, Event::Meta(MetaEvent::Tempo(500_000)));
        track.push(0, Event::NoteOn { channel: 0, key: 60, velocity: 100 });
        track.push(480, Event::NoteOff { channel: 0, key: 60, velocity: 0 });
        smf.tracks.push(track);
        smf
    }

    #[test]
    fn header_layout_is_correct() {
        let bytes = write_smf(&one_note_file());
        assert_eq!(&bytes[0..4], b"MThd");
        assert_eq!(u32::from_be_bytes(bytes[4..8].try_into().unwrap()), 6);
        assert_eq!(u16::from_be_bytes(bytes[8..10].try_into().unwrap()), 0); // format
        assert_eq!(u16::from_be_bytes(bytes[10..12].try_into().unwrap()), 1); // ntracks
        assert_eq!(u16::from_be_bytes(bytes[12..14].try_into().unwrap()), 480);
        assert_eq!(&bytes[14..18], b"MTrk");
    }

    #[test]
    fn track_length_matches_body() {
        let bytes = write_smf(&one_note_file());
        let len = u32::from_be_bytes(bytes[18..22].try_into().unwrap()) as usize;
        assert_eq!(bytes.len(), 22 + len);
    }

    #[test]
    fn end_of_track_is_appended_when_missing() {
        let bytes = write_smf(&one_note_file());
        // Last three bytes of the body must be FF 2F 00.
        assert_eq!(&bytes[bytes.len() - 3..], &[0xFF, 0x2F, 0x00]);
    }

    #[test]
    fn explicit_end_of_track_not_duplicated() {
        let mut smf = Smf::new(0, 96);
        let mut track = Track::default();
        track.push(0, Event::Meta(MetaEvent::EndOfTrack));
        smf.tracks.push(track);
        let bytes = write_smf(&smf);
        let body = &bytes[22..];
        assert_eq!(body, &[0x00, 0xFF, 0x2F, 0x00]);
    }

    #[test]
    fn events_after_end_of_track_are_dropped() {
        let mut smf = Smf::new(0, 96);
        let mut track = Track::default();
        track.push(0, Event::Meta(MetaEvent::EndOfTrack));
        track.events.push(TrackEvent {
            delta: 10,
            event: Event::NoteOn { channel: 0, key: 64, velocity: 80 },
        });
        smf.tracks.push(track);
        let bytes = write_smf(&smf);
        assert_eq!(&bytes[22..], &[0x00, 0xFF, 0x2F, 0x00]);
    }

    #[test]
    fn tempo_encoding_is_24_bit_big_endian() {
        let mut smf = Smf::new(0, 96);
        let mut track = Track::default();
        track.push(0, Event::Meta(MetaEvent::Tempo(600_000)));
        smf.tracks.push(track);
        let bytes = write_smf(&smf);
        let body = &bytes[22..];
        assert_eq!(&body[..6], &[0x00, 0xFF, 0x51, 0x03, 0x09, 0x27]);
        assert_eq!(body[6], 0xC0); // 600000 = 0x0927C0
    }
}
