//! Standard MIDI File (SMF) substrate.
//!
//! The paper builds its large music database by "extracting notes from the
//! melody channel of MIDI files collected from the Internet" (§5.3). This
//! crate implements the SMF container from scratch — no external MIDI
//! dependency — so the workspace can exercise the identical pipeline:
//!
//! * [`vlq`] — variable-length quantities (delta times, meta lengths),
//! * [`event`] — the channel/meta event model,
//! * [`writer`] — serialize format 0/1 files,
//! * [`reader`] — parse files, with running status and graceful skipping of
//!   unknown events,
//! * [`melody`] — extract a monophonic `(note, duration)` melody from a
//!   channel, which [`hum-music`](../hum_music/index.html) renders into the
//!   time-series representation of §3.2.

pub mod event;
pub mod melody;
pub mod reader;
pub mod vlq;
pub mod writer;

pub use event::{Event, MetaEvent, Smf, Track, TrackEvent};
pub use melody::{extract_melody, MelodyNote};
pub use reader::parse_smf;
pub use writer::write_smf;

/// Errors produced while parsing or validating SMF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MidiError {
    /// The file does not start with a valid `MThd` chunk.
    BadHeader(String),
    /// A track chunk is malformed.
    BadTrack(String),
    /// The byte stream ended mid-structure.
    UnexpectedEof,
    /// A value exceeds its legal range (e.g. a 5-byte VLQ).
    InvalidValue(String),
}

impl std::fmt::Display for MidiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MidiError::BadHeader(msg) => write!(f, "bad MIDI header: {msg}"),
            MidiError::BadTrack(msg) => write!(f, "bad MIDI track: {msg}"),
            MidiError::UnexpectedEof => write!(f, "unexpected end of MIDI data"),
            MidiError::InvalidValue(msg) => write!(f, "invalid MIDI value: {msg}"),
        }
    }
}

impl std::error::Error for MidiError {}
