//! SMF parsing.
//!
//! Handles running status, all channel message classes (unneeded ones are
//! preserved as [`Event::Other`]), meta events, and sysex blocks. Parsing is
//! strict about container structure (chunk magic, lengths) and tolerant
//! about content (unknown events are retained, not rejected), which is the
//! right posture for melody files "collected from the Internet".

use crate::event::{Event, MetaEvent, Smf, Track, TrackEvent};
use crate::vlq::read_vlq;
use crate::MidiError;

/// Parses a complete SMF byte stream.
pub fn parse_smf(data: &[u8]) -> Result<Smf, MidiError> {
    let mut pos = 0usize;
    let header = read_chunk(data, &mut pos, b"MThd")?;
    if header.len() < 6 {
        return Err(MidiError::BadHeader(format!("header chunk of {} bytes", header.len())));
    }
    let format = u16::from_be_bytes([header[0], header[1]]);
    if format > 1 {
        return Err(MidiError::BadHeader(format!("unsupported format {format}")));
    }
    let declared_tracks = u16::from_be_bytes([header[2], header[3]]) as usize;
    let division = u16::from_be_bytes([header[4], header[5]]);
    if division & 0x8000 != 0 {
        return Err(MidiError::BadHeader("SMPTE division is not supported".into()));
    }
    if division == 0 {
        return Err(MidiError::BadHeader("zero division".into()));
    }

    let mut smf = Smf::new(format, division);
    while pos < data.len() && smf.tracks.len() < declared_tracks {
        let body = read_chunk(data, &mut pos, b"MTrk")?;
        smf.tracks.push(parse_track(body)?);
    }
    if smf.tracks.len() != declared_tracks {
        return Err(MidiError::BadHeader(format!(
            "header declares {declared_tracks} tracks, found {}",
            smf.tracks.len()
        )));
    }
    Ok(smf)
}

/// Reads one chunk with the expected magic; returns its body.
fn read_chunk<'a>(data: &'a [u8], pos: &mut usize, magic: &[u8; 4]) -> Result<&'a [u8], MidiError> {
    if data.len() < *pos + 8 {
        return Err(MidiError::UnexpectedEof);
    }
    let found = &data[*pos..*pos + 4];
    if found != magic {
        return Err(MidiError::BadHeader(format!(
            "expected chunk {:?}, found {:?}",
            String::from_utf8_lossy(magic),
            String::from_utf8_lossy(found)
        )));
    }
    let len = u32::from_be_bytes(data[*pos + 4..*pos + 8].try_into().expect("4 bytes")) as usize;
    *pos += 8;
    if data.len() < *pos + len {
        return Err(MidiError::UnexpectedEof);
    }
    let body = &data[*pos..*pos + len];
    *pos += len;
    Ok(body)
}

fn parse_track(body: &[u8]) -> Result<Track, MidiError> {
    let mut track = Track::default();
    let mut pos = 0usize;
    let mut running_status: Option<u8> = None;

    while pos < body.len() {
        let delta = read_vlq(body, &mut pos)?;
        let first = *body.get(pos).ok_or(MidiError::UnexpectedEof)?;
        let status = if first & 0x80 != 0 {
            pos += 1;
            if first < 0xF0 {
                running_status = Some(first);
            }
            first
        } else {
            running_status
                .ok_or_else(|| MidiError::BadTrack("data byte with no running status".into()))?
        };

        let event = match status {
            0x80..=0x8F => {
                let (key, velocity) = read_two(body, &mut pos)?;
                Event::NoteOff { channel: status & 0x0F, key, velocity }
            }
            0x90..=0x9F => {
                let (key, velocity) = read_two(body, &mut pos)?;
                Event::NoteOn { channel: status & 0x0F, key, velocity }
            }
            0xA0..=0xBF | 0xE0..=0xEF => {
                // Polyphonic pressure / control change / pitch bend: 2 data bytes.
                let (a, b) = read_two(body, &mut pos)?;
                Event::Other { status, data: vec![a, b] }
            }
            0xC0..=0xCF => {
                let program = read_one(body, &mut pos)?;
                Event::ProgramChange { channel: status & 0x0F, program }
            }
            0xD0..=0xDF => {
                // Channel pressure: 1 data byte.
                let a = read_one(body, &mut pos)?;
                Event::Other { status, data: vec![a] }
            }
            0xF0 | 0xF7 => {
                // Sysex: VLQ length, then payload.
                let len = read_vlq(body, &mut pos)? as usize;
                let data = take(body, &mut pos, len)?.to_vec();
                Event::Other { status, data }
            }
            0xFF => {
                let kind = read_one(body, &mut pos)?;
                let len = read_vlq(body, &mut pos)? as usize;
                let data = take(body, &mut pos, len)?;
                match kind {
                    0x51 => {
                        if data.len() != 3 {
                            return Err(MidiError::BadTrack(format!(
                                "tempo event with {} bytes",
                                data.len()
                            )));
                        }
                        let us = u32::from_be_bytes([0, data[0], data[1], data[2]]);
                        Event::Meta(MetaEvent::Tempo(us))
                    }
                    0x03 => Event::Meta(MetaEvent::TrackName(
                        String::from_utf8_lossy(data).into_owned(),
                    )),
                    0x2F => Event::Meta(MetaEvent::EndOfTrack),
                    _ => Event::Meta(MetaEvent::Other { kind, data: data.to_vec() }),
                }
            }
            _ => {
                return Err(MidiError::BadTrack(format!("unsupported status byte {status:#04x}")))
            }
        };
        let is_end = matches!(event, Event::Meta(MetaEvent::EndOfTrack));
        track.events.push(TrackEvent { delta, event });
        if is_end {
            break;
        }
    }
    Ok(track)
}

fn read_one(data: &[u8], pos: &mut usize) -> Result<u8, MidiError> {
    let b = *data.get(*pos).ok_or(MidiError::UnexpectedEof)?;
    *pos += 1;
    Ok(b)
}

fn read_two(data: &[u8], pos: &mut usize) -> Result<(u8, u8), MidiError> {
    let a = read_one(data, pos)?;
    let b = read_one(data, pos)?;
    Ok((a, b))
}

fn take<'a>(data: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8], MidiError> {
    if data.len() < *pos + len {
        return Err(MidiError::UnexpectedEof);
    }
    let out = &data[*pos..*pos + len];
    *pos += len;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_smf;

    fn sample_smf() -> Smf {
        let mut smf = Smf::new(1, 480);
        let mut meta_track = Track::default();
        meta_track.push(0, Event::Meta(MetaEvent::TrackName("melody test".into())));
        meta_track.push(0, Event::Meta(MetaEvent::Tempo(500_000)));
        meta_track.push(0, Event::Meta(MetaEvent::EndOfTrack));
        smf.tracks.push(meta_track);

        let mut track = Track::default();
        track.push(0, Event::ProgramChange { channel: 0, program: 73 });
        for key in [60u8, 62, 64, 65, 67] {
            track.push(0, Event::NoteOn { channel: 0, key, velocity: 96 });
            track.push(240, Event::NoteOff { channel: 0, key, velocity: 0 });
        }
        track.push(0, Event::Meta(MetaEvent::EndOfTrack));
        smf.tracks.push(track);
        smf
    }

    #[test]
    fn write_parse_roundtrip() {
        let smf = sample_smf();
        let parsed = parse_smf(&write_smf(&smf)).unwrap();
        assert_eq!(parsed, smf);
    }

    #[test]
    fn running_status_is_honored() {
        // Hand-built track: status 0x90 appears once, second note reuses it.
        let mut body = vec![
            0x00, 0x90, 60, 100, // NoteOn
            0x60, 60, 0, // running status: NoteOn vel 0 (release)
            0x00, 0xFF, 0x2F, 0x00,
        ];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"MThd");
        bytes.extend_from_slice(&6u32.to_be_bytes());
        bytes.extend_from_slice(&0u16.to_be_bytes());
        bytes.extend_from_slice(&1u16.to_be_bytes());
        bytes.extend_from_slice(&480u16.to_be_bytes());
        bytes.extend_from_slice(b"MTrk");
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.append(&mut body);

        let smf = parse_smf(&bytes).unwrap();
        let events = &smf.tracks[0].events;
        assert_eq!(events.len(), 3);
        assert_eq!(events[1].event, Event::NoteOn { channel: 0, key: 60, velocity: 0 });
        assert_eq!(events[1].delta, 0x60);
    }

    #[test]
    fn unknown_events_are_preserved() {
        let mut smf = Smf::new(0, 96);
        let mut track = Track::default();
        track.push(0, Event::Other { status: 0xB0, data: vec![7, 100] }); // volume CC
        track.push(5, Event::Meta(MetaEvent::Other { kind: 0x58, data: vec![4, 2, 24, 8] }));
        track.push(0, Event::Meta(MetaEvent::EndOfTrack));
        smf.tracks.push(track);
        let parsed = parse_smf(&write_smf(&smf)).unwrap();
        assert_eq!(parsed, smf);
    }

    #[test]
    fn truncated_file_fails() {
        let bytes = write_smf(&sample_smf());
        assert!(parse_smf(&bytes[..bytes.len() - 4]).is_err());
        assert_eq!(parse_smf(&bytes[..6]), Err(MidiError::UnexpectedEof));
    }

    #[test]
    fn wrong_magic_fails() {
        let mut bytes = write_smf(&sample_smf());
        bytes[0] = b'X';
        assert!(matches!(parse_smf(&bytes), Err(MidiError::BadHeader(_))));
    }

    #[test]
    fn format_2_is_rejected() {
        let mut bytes = write_smf(&sample_smf());
        bytes[9] = 2; // format low byte
        assert!(matches!(parse_smf(&bytes), Err(MidiError::BadHeader(_))));
    }

    #[test]
    fn track_count_mismatch_detected() {
        let mut bytes = write_smf(&sample_smf());
        bytes[11] = 3; // claim three tracks, provide two
        assert!(matches!(parse_smf(&bytes), Err(MidiError::BadHeader(_))));
    }
}
