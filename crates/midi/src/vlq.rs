//! Variable-length quantities.
//!
//! SMF encodes delta times and meta-event lengths as big-endian base-128
//! integers with the high bit of each byte marking continuation. Values are
//! capped at 4 bytes (28 significant bits) per the specification.

use crate::MidiError;

/// Maximum value representable in a 4-byte VLQ.
pub const MAX_VLQ: u32 = 0x0FFF_FFFF;

/// Appends the VLQ encoding of `value` to `out`.
///
/// # Panics
/// Panics if `value > MAX_VLQ`.
pub fn write_vlq(value: u32, out: &mut Vec<u8>) {
    assert!(value <= MAX_VLQ, "VLQ overflow: {value}");
    let mut buf = [0u8; 4];
    let mut idx = 3;
    let mut v = value;
    buf[idx] = (v & 0x7F) as u8;
    v >>= 7;
    while v > 0 {
        idx -= 1;
        buf[idx] = 0x80 | (v & 0x7F) as u8;
        v >>= 7;
    }
    out.extend_from_slice(&buf[idx..]);
}

/// Reads a VLQ from `data` starting at `*pos`, advancing `*pos`.
pub fn read_vlq(data: &[u8], pos: &mut usize) -> Result<u32, MidiError> {
    let mut value: u32 = 0;
    for i in 0..4 {
        let byte = *data.get(*pos).ok_or(MidiError::UnexpectedEof)?;
        *pos += 1;
        value = (value << 7) | (byte & 0x7F) as u32;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        if i == 3 {
            break;
        }
    }
    Err(MidiError::InvalidValue("VLQ longer than 4 bytes".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u32) -> u32 {
        let mut buf = Vec::new();
        write_vlq(v, &mut buf);
        let mut pos = 0;
        let back = read_vlq(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        back
    }

    #[test]
    fn spec_reference_values() {
        // Examples from the SMF specification.
        let cases: &[(u32, &[u8])] = &[
            (0x00, &[0x00]),
            (0x40, &[0x40]),
            (0x7F, &[0x7F]),
            (0x80, &[0x81, 0x00]),
            (0x2000, &[0xC0, 0x00]),
            (0x3FFF, &[0xFF, 0x7F]),
            (0x4000, &[0x81, 0x80, 0x00]),
            (0x0FFF_FFFF, &[0xFF, 0xFF, 0xFF, 0x7F]),
        ];
        for (v, bytes) in cases {
            let mut buf = Vec::new();
            write_vlq(*v, &mut buf);
            assert_eq!(buf.as_slice(), *bytes, "value {v:#x}");
        }
    }

    #[test]
    fn roundtrip_sweep() {
        for v in [0u32, 1, 127, 128, 255, 1000, 16383, 16384, 2_000_000, MAX_VLQ] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut pos = 0;
        assert_eq!(read_vlq(&[0x81], &mut pos), Err(MidiError::UnexpectedEof));
    }

    #[test]
    fn overlong_vlq_rejected() {
        let mut pos = 0;
        assert!(matches!(
            read_vlq(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F], &mut pos),
            Err(MidiError::InvalidValue(_))
        ));
    }

    #[test]
    #[should_panic(expected = "VLQ overflow")]
    fn oversized_value_panics_on_write() {
        let mut buf = Vec::new();
        write_vlq(MAX_VLQ + 1, &mut buf);
    }
}
