//! The SMF event model.

/// A complete Standard MIDI File.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Smf {
    /// SMF format: 0 (single track) or 1 (parallel tracks).
    pub format: u16,
    /// Ticks per quarter note (only the metrical division form is
    /// supported, as in virtually all melodic MIDI files).
    pub ticks_per_quarter: u16,
    /// The track chunks.
    pub tracks: Vec<Track>,
}

/// One `MTrk` chunk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Track {
    /// Delta-timed events in file order.
    pub events: Vec<TrackEvent>,
}

/// An event with its delta time (ticks since the previous event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackEvent {
    /// Ticks since the previous event in the same track.
    pub delta: u32,
    /// The event payload.
    pub event: Event,
}

/// Channel and meta events. Events the melody pipeline does not need are
/// preserved structurally ([`Event::Other`]) so files round-trip through the
/// reader without loss of timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Key pressed. A `NoteOn` with velocity 0 is, per convention, a release.
    NoteOn {
        /// Channel 0–15.
        channel: u8,
        /// MIDI key number 0–127 (60 = middle C).
        key: u8,
        /// Velocity 0–127.
        velocity: u8,
    },
    /// Key released.
    NoteOff {
        /// Channel 0–15.
        channel: u8,
        /// MIDI key number 0–127.
        key: u8,
        /// Release velocity 0–127.
        velocity: u8,
    },
    /// Instrument selection.
    ProgramChange {
        /// Channel 0–15.
        channel: u8,
        /// Program number 0–127.
        program: u8,
    },
    /// A meta event.
    Meta(MetaEvent),
    /// Any other channel/system event, kept as raw status plus data bytes.
    Other {
        /// The status byte.
        status: u8,
        /// The data bytes that followed it.
        data: Vec<u8>,
    },
}

/// Meta events relevant to melody extraction, plus a raw escape hatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaEvent {
    /// Tempo in microseconds per quarter note.
    Tempo(u32),
    /// Track or sequence name.
    TrackName(String),
    /// End of track marker.
    EndOfTrack,
    /// Any other meta event: type byte plus payload.
    Other {
        /// Meta type byte.
        kind: u8,
        /// Raw payload.
        data: Vec<u8>,
    },
}

impl Smf {
    /// Creates a format-`format` file with the given metrical division.
    ///
    /// # Panics
    /// Panics if the format is not 0 or 1, or the division is zero or has
    /// the SMPTE bit set.
    pub fn new(format: u16, ticks_per_quarter: u16) -> Self {
        assert!(format <= 1, "only SMF formats 0 and 1 are supported");
        assert!(ticks_per_quarter > 0, "division must be positive");
        assert!(ticks_per_quarter & 0x8000 == 0, "SMPTE division is not supported");
        Smf { format, ticks_per_quarter, tracks: Vec::new() }
    }

    /// Total events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }
}

impl Track {
    /// Appends an event after `delta` ticks.
    pub fn push(&mut self, delta: u32, event: Event) {
        self.events.push(TrackEvent { delta, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smf_constructor_validates() {
        let smf = Smf::new(1, 480);
        assert_eq!(smf.format, 1);
        assert_eq!(smf.ticks_per_quarter, 480);
        assert_eq!(smf.event_count(), 0);
    }

    #[test]
    fn track_push_keeps_order() {
        let mut t = Track::default();
        t.push(0, Event::NoteOn { channel: 0, key: 60, velocity: 90 });
        t.push(480, Event::NoteOff { channel: 0, key: 60, velocity: 0 });
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[1].delta, 480);
    }

    #[test]
    #[should_panic(expected = "formats 0 and 1")]
    fn format_2_rejected() {
        let _ = Smf::new(2, 480);
    }

    #[test]
    #[should_panic(expected = "SMPTE")]
    fn smpte_division_rejected() {
        let _ = Smf::new(0, 0x8000 | 25);
    }
}
