//! Melody extraction (paper §3.2 and §5.3).
//!
//! Flattens the note events of one channel into the monophonic
//! `(Note, Duration)` tuple sequence of §3.2. Rests are *dropped* — the
//! paper explicitly ignores silence because "amateur singers are notoriously
//! bad in the timing of rests" — and overlapping notes are resolved
//! last-note-priority, the standard convention for melody channels.

use crate::event::{Event, MetaEvent, Smf};

/// One melody note: a pitch and its duration in beats (quarter notes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MelodyNote {
    /// MIDI key number (60 = middle C).
    pub pitch: u8,
    /// Duration in beats.
    pub beats: f64,
}

/// Extracts the melody played on `channel` across all tracks of `smf`.
///
/// Returns notes in onset order with durations measured from each note's
/// onset to its release (or to the onset of the note that interrupts it).
/// Zero-duration notes are discarded. Returns an empty vector if the channel
/// is silent.
pub fn extract_melody(smf: &Smf, channel: u8) -> Vec<MelodyNote> {
    let tpq = smf.ticks_per_quarter as f64;
    let mut notes: Vec<(u64, u64, u8)> = Vec::new(); // (onset_tick, release_tick, key)

    for track in &smf.tracks {
        let mut clock: u64 = 0;
        // Currently sounding note on this channel: (onset, key).
        let mut active: Option<(u64, u8)> = None;
        for te in &track.events {
            clock += te.delta as u64;
            match te.event {
                Event::NoteOn { channel: ch, key, velocity } if ch == channel && velocity > 0 => {
                    if let Some((onset, prev_key)) = active.take() {
                        // Last-note priority: the new onset truncates the
                        // previous note.
                        push_note(&mut notes, onset, clock, prev_key);
                    }
                    active = Some((clock, key));
                }
                Event::NoteOff { channel: ch, key, .. }
                | Event::NoteOn { channel: ch, key, velocity: 0 }
                    if ch == channel =>
                {
                    if let Some((onset, active_key)) = active {
                        if active_key == key {
                            push_note(&mut notes, onset, clock, key);
                            active = None;
                        }
                        // A release for a note already truncated: ignore.
                    }
                }
                Event::Meta(MetaEvent::EndOfTrack) => {
                    if let Some((onset, key)) = active.take() {
                        push_note(&mut notes, onset, clock, key);
                    }
                }
                _ => {}
            }
        }
        if let Some((onset, key)) = active.take() {
            push_note(&mut notes, onset, clock, key);
        }
    }

    notes.sort_by_key(|&(onset, _, _)| onset);
    notes
        .into_iter()
        .map(|(onset, release, key)| MelodyNote {
            pitch: key,
            beats: (release - onset) as f64 / tpq,
        })
        .collect()
}

fn push_note(notes: &mut Vec<(u64, u64, u8)>, onset: u64, release: u64, key: u8) {
    if release > onset {
        notes.push((onset, release, key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;

    fn file_with(events: Vec<(u32, Event)>) -> Smf {
        let mut smf = Smf::new(0, 480);
        let mut track = Track::default();
        for (delta, e) in events {
            track.push(delta, e);
        }
        smf.tracks.push(track);
        smf
    }

    fn on(key: u8) -> Event {
        Event::NoteOn { channel: 0, key, velocity: 90 }
    }

    fn off(key: u8) -> Event {
        Event::NoteOff { channel: 0, key, velocity: 0 }
    }

    #[test]
    fn simple_sequence_extracts_in_order() {
        let smf = file_with(vec![
            (0, on(60)),
            (480, off(60)),
            (0, on(64)),
            (240, off(64)),
            (0, on(67)),
            (960, off(67)),
        ]);
        let melody = extract_melody(&smf, 0);
        assert_eq!(
            melody,
            vec![
                MelodyNote { pitch: 60, beats: 1.0 },
                MelodyNote { pitch: 64, beats: 0.5 },
                MelodyNote { pitch: 67, beats: 2.0 },
            ]
        );
    }

    #[test]
    fn rests_are_dropped() {
        // A two-beat gap between notes leaves no trace in the melody.
        let smf = file_with(vec![(0, on(60)), (480, off(60)), (960, on(62)), (480, off(62))]);
        let melody = extract_melody(&smf, 0);
        assert_eq!(melody.len(), 2);
        assert_eq!(melody[0].beats, 1.0);
        assert_eq!(melody[1].beats, 1.0);
    }

    #[test]
    fn note_on_velocity_zero_is_a_release() {
        let smf = file_with(vec![
            (0, on(72)),
            (480, Event::NoteOn { channel: 0, key: 72, velocity: 0 }),
        ]);
        assert_eq!(extract_melody(&smf, 0), vec![MelodyNote { pitch: 72, beats: 1.0 }]);
    }

    #[test]
    fn overlap_resolved_last_note_priority() {
        // Second note starts before the first releases: first is truncated.
        let smf = file_with(vec![(0, on(60)), (240, on(62)), (240, off(60)), (240, off(62))]);
        let melody = extract_melody(&smf, 0);
        assert_eq!(melody.len(), 2);
        assert_eq!(melody[0], MelodyNote { pitch: 60, beats: 0.5 });
        assert_eq!(melody[1], MelodyNote { pitch: 62, beats: 1.0 });
    }

    #[test]
    fn other_channels_are_ignored() {
        let smf = file_with(vec![
            (0, on(60)),
            (0, Event::NoteOn { channel: 9, key: 35, velocity: 120 }), // drums
            (480, off(60)),
            (0, Event::NoteOff { channel: 9, key: 35, velocity: 0 }),
        ]);
        let melody = extract_melody(&smf, 0);
        assert_eq!(melody.len(), 1);
        assert_eq!(melody[0].pitch, 60);
    }

    #[test]
    fn dangling_note_closed_at_end_of_track() {
        let mut smf = file_with(vec![(0, on(60))]);
        smf.tracks[0].push(960, Event::Meta(MetaEvent::EndOfTrack));
        assert_eq!(extract_melody(&smf, 0), vec![MelodyNote { pitch: 60, beats: 2.0 }]);
    }

    #[test]
    fn empty_channel_gives_empty_melody() {
        let smf = file_with(vec![(0, on(60)), (480, off(60))]);
        assert!(extract_melody(&smf, 3).is_empty());
    }

    #[test]
    fn zero_duration_notes_discarded() {
        let smf = file_with(vec![(0, on(60)), (0, off(60)), (0, on(62)), (480, off(62))]);
        let melody = extract_melody(&smf, 0);
        assert_eq!(melody.len(), 1);
        assert_eq!(melody[0].pitch, 62);
    }
}
