//! A seeded generative songbook.
//!
//! Stands in for the paper's manually entered corpus of "50 of the most
//! popular Beatles's songs … further segmented to 1000 short melodies", each
//! of 15–30 notes (§5.1). Songs are tonal: a key (major or minor), phrases
//! built as constrained random walks over scale degrees with step-biased
//! interval statistics, cadences toward tonic/dominant, and bar-structured
//! rhythms — enough musical structure that phrase melodies are mutually
//! distinguishable yet realistically self-similar, which is what the
//! retrieval experiments require.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use crate::melody::{Melody, Note};

/// Intervals (in scale steps) of the major scale.
const MAJOR: [u8; 7] = [0, 2, 4, 5, 7, 9, 11];
/// Intervals of the natural minor scale.
const MINOR: [u8; 7] = [0, 2, 3, 5, 7, 8, 10];

/// Songbook generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SongbookConfig {
    /// Number of songs.
    pub songs: usize,
    /// Phrases per song (the paper's corpus averages 20).
    pub phrases_per_song: usize,
    /// Minimum notes per phrase.
    pub min_notes: usize,
    /// Maximum notes per phrase (inclusive).
    pub max_notes: usize,
    /// RNG seed; equal seeds give byte-identical songbooks.
    pub seed: u64,
}

impl Default for SongbookConfig {
    fn default() -> Self {
        SongbookConfig { songs: 50, phrases_per_song: 20, min_notes: 15, max_notes: 30, seed: 2003 }
    }
}

/// A generated song: a key and its phrase melodies.
#[derive(Debug, Clone, PartialEq)]
pub struct Song {
    /// Display name ("Song 07 in A minor").
    pub name: String,
    /// Tonic MIDI pitch.
    pub tonic: u8,
    /// `true` for major, `false` for natural minor.
    pub major: bool,
    /// Phrase melodies in song order.
    pub phrases: Vec<Melody>,
}

/// A corpus of generated songs.
#[derive(Debug, Clone, PartialEq)]
pub struct Songbook {
    /// The songs.
    pub songs: Vec<Song>,
}

impl Songbook {
    /// Generates a songbook deterministically from the configuration.
    ///
    /// # Panics
    /// Panics on degenerate configurations (zero sizes, inverted note
    /// bounds).
    pub fn generate(config: &SongbookConfig) -> Self {
        assert!(config.songs > 0 && config.phrases_per_song > 0, "empty songbook");
        assert!(
            2 <= config.min_notes && config.min_notes <= config.max_notes,
            "invalid phrase-length bounds"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let songs = (0..config.songs).map(|i| generate_song(i, config, &mut rng)).collect();
        Songbook { songs }
    }

    /// All phrase melodies flattened in `(song index, phrase index, melody)`
    /// order — the melody database of the experiments.
    pub fn phrases(&self) -> Vec<(usize, usize, &Melody)> {
        self.songs
            .iter()
            .enumerate()
            .flat_map(|(s, song)| {
                song.phrases.iter().enumerate().map(move |(p, m)| (s, p, m))
            })
            .collect()
    }

    /// Total number of phrases.
    pub fn phrase_count(&self) -> usize {
        self.songs.iter().map(|s| s.phrases.len()).sum()
    }
}

fn generate_song(index: usize, config: &SongbookConfig, rng: &mut StdRng) -> Song {
    let tonic = rng.random_range(48u8..=62); // C3..D4: comfortable hum range
    let major = rng.random_bool(0.7);
    let scale = if major { &MAJOR } else { &MINOR };
    let key_name = if major { "major" } else { "minor" };

    // A motif of rhythm values shared across the song gives it coherence.
    let rhythm_pool: Vec<f64> = vec![0.5, 0.5, 0.5, 1.0, 1.0, 1.0, 1.5, 2.0];
    let motif_rhythm: Vec<f64> =
        (0..4).map(|_| *rhythm_pool.choose(rng).expect("pool nonempty")).collect();

    // Songs are self-similar: a few section themes (verse, chorus, bridge)
    // recur as varied repetitions, like a real pop corpus. This
    // self-similarity is what stresses coarse representations (contour
    // strings) while exact pitch-and-duration matching stays informative.
    let n_themes = rng.random_range(3..=5usize);
    let themes: Vec<Vec<(i32, f64)>> =
        (0..n_themes).map(|_| generate_phrase_degrees(&motif_rhythm, config, rng)).collect();

    let phrases = (0..config.phrases_per_song)
        .map(|_| {
            let degrees = if rng.random_bool(0.25) {
                generate_phrase_degrees(&motif_rhythm, config, rng)
            } else {
                vary_phrase(themes.choose(rng).expect("themes nonempty"), rng)
            };
            render_degrees(&degrees, tonic, scale)
        })
        .collect();
    Song { name: format!("Song {index:02} in {key_name}"), tonic, major, phrases }
}

/// Produces a varied repetition of a theme: every variant differs from the
/// theme in at least one note, with small degree and rhythm edits scattered
/// through.
fn vary_phrase(theme: &[(i32, f64)], rng: &mut StdRng) -> Vec<(i32, f64)> {
    let mut out = theme.to_vec();
    let mut changed = false;
    for entry in &mut out {
        if rng.random_bool(0.15) {
            let delta = if rng.random_bool(0.5) { 1 } else { -1 };
            entry.0 = (entry.0 + delta).clamp(0, 13);
            changed = true;
        }
        if rng.random_bool(0.12) {
            entry.1 = *[0.5, 1.0, 1.5].choose(rng).expect("nonempty");
            changed = true;
        }
    }
    if !changed {
        let at = rng.random_range(0..out.len());
        out[at].0 = (out[at].0 + 1).clamp(0, 13);
    }
    out
}

/// Renders a degree/rhythm sketch into concrete pitches in a key.
fn render_degrees(degrees: &[(i32, f64)], tonic: u8, scale: &[u8; 7]) -> Melody {
    degrees
        .iter()
        .map(|&(degree, beats)| {
            let octave = (degree / 7) as u8;
            let in_scale = scale[(degree % 7) as usize];
            Note::new((tonic + 12 * octave + in_scale).min(127), beats)
        })
        .collect()
}

/// Builds one phrase sketch as a step-biased random walk over scale
/// degrees, paired with rhythm values.
fn generate_phrase_degrees(
    motif_rhythm: &[f64],
    config: &SongbookConfig,
    rng: &mut StdRng,
) -> Vec<(i32, f64)> {
    let n_notes = rng.random_range(config.min_notes..=config.max_notes);
    // Degree index over two octaves: 0..14 maps to tonic .. tonic+2 octaves.
    let mut degree: i32 = rng.random_range(4..10);
    let mut sketch = Vec::with_capacity(n_notes);
    for i in 0..n_notes {
        // Interval distribution matching real melodic statistics (Vos &
        // Troost): ~a quarter repeated notes, steps dominating, leaps rare,
        // with gravity toward the middle of the ambitus. The resulting
        // low-entropy contours are exactly what makes contour strings
        // under-discriminative on real corpora (paper §2).
        let step = {
            let r: f64 = rng.random();
            let magnitude = if r < 0.22 {
                0
            } else if r < 0.68 {
                1
            } else if r < 0.88 {
                2
            } else if r < 0.96 {
                3
            } else {
                4
            };
            let up = if degree <= 2 {
                true
            } else if degree >= 12 {
                false
            } else {
                rng.random_bool(0.5)
            };
            if up {
                magnitude
            } else {
                -magnitude
            }
        };
        if i > 0 {
            degree = (degree + step).clamp(0, 13);
        }
        // Cadence: last note resolves to tonic or dominant.
        if i == n_notes - 1 {
            degree = *[0i32, 4, 7].choose(rng).expect("nonempty");
        }

        // Rhythm: cycle the song motif with occasional variation.
        let beats = if rng.random_bool(0.2) {
            *[0.5, 1.0, 1.5].choose(rng).expect("nonempty")
        } else {
            motif_rhythm[i % motif_rhythm.len()]
        };
        sketch.push((degree, beats));
    }
    sketch
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SongbookConfig {
        SongbookConfig { songs: 5, phrases_per_song: 4, ..SongbookConfig::default() }
    }

    #[test]
    fn default_config_matches_paper_corpus_shape() {
        let c = SongbookConfig::default();
        assert_eq!(c.songs * c.phrases_per_song, 1000);
        assert_eq!((c.min_notes, c.max_notes), (15, 30));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Songbook::generate(&small_config());
        let b = Songbook::generate(&small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Songbook::generate(&small_config());
        let b = Songbook::generate(&SongbookConfig { seed: 9, ..small_config() });
        assert_ne!(a, b);
    }

    #[test]
    fn phrase_lengths_respect_bounds() {
        let book = Songbook::generate(&SongbookConfig::default());
        assert_eq!(book.phrase_count(), 1000);
        for (_, _, m) in book.phrases() {
            assert!((15..=30).contains(&m.len()), "phrase of {} notes", m.len());
        }
    }

    #[test]
    fn pitches_stay_in_singable_range() {
        let book = Songbook::generate(&SongbookConfig::default());
        for (_, _, m) in book.phrases() {
            let (lo, hi) = m.pitch_range().expect("nonempty phrase");
            assert!(lo >= 40 && hi <= 100, "range {lo}..{hi}");
            // Two-octave ambitus cap.
            assert!(hi - lo <= 26, "ambitus {}", hi - lo);
        }
    }

    #[test]
    fn melodies_are_step_dominated() {
        // Real melodies move mostly by small intervals; the generator should
        // mirror that (it drives contour-method behaviour).
        let book = Songbook::generate(&SongbookConfig::default());
        let mut steps = 0usize;
        let mut total = 0usize;
        for (_, _, m) in book.phrases() {
            for iv in m.intervals() {
                total += 1;
                if iv.abs() <= 4 {
                    steps += 1;
                }
            }
        }
        assert!(steps as f64 / total as f64 > 0.6, "step ratio {}", steps as f64 / total as f64);
    }

    #[test]
    fn phrases_within_a_book_are_mostly_distinct() {
        let book = Songbook::generate(&small_config());
        let phrases = book.phrases();
        let mut identical = 0;
        for i in 0..phrases.len() {
            for j in (i + 1)..phrases.len() {
                if phrases[i].2 == phrases[j].2 {
                    identical += 1;
                }
            }
        }
        assert_eq!(identical, 0, "{identical} duplicate phrases");
    }

    #[test]
    fn song_names_mention_mode() {
        let book = Songbook::generate(&small_config());
        for song in &book.songs {
            assert!(song.name.contains("major") || song.name.contains("minor"));
        }
    }

    #[test]
    #[should_panic(expected = "empty songbook")]
    fn zero_songs_rejected() {
        let _ = Songbook::generate(&SongbookConfig { songs: 0, ..SongbookConfig::default() });
    }
}
