//! Humming simulation.
//!
//! The paper collected hums from "people with different musical skills"
//! (§5.1). This simulator reproduces the distortion channels the paper
//! enumerates in §3.3 — the exact invariances the index is designed for:
//!
//! 1. **Absolute pitch** — a global transposition (uniform in a per-profile
//!    range);
//! 2. **Tempo** — a global time scaling ("from half to double the original
//!    tempo");
//! 3. **Relative pitch** — per-note interval error plus slow drift;
//! 4. **Local timing** — per-note duration jitter (exactly what local
//!    dynamic time warping absorbs), plus occasional octave slips for poor
//!    singers.
//!
//! Output is available both as perturbed notes (for the audio-synthesis
//! route through `hum-audio`) and as a 10 ms-frame pitch time series (the
//! symbolic route, mirroring Figure 1 of the paper).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::melody::Melody;

/// One sung (perturbed) note.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SungNote {
    /// Fractional MIDI pitch actually produced.
    pub midi: f64,
    /// Duration actually held, in seconds.
    pub seconds: f64,
}

/// Distortion magnitudes for one class of singer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingerProfile {
    /// Global tempo factor is drawn uniformly from this range.
    pub tempo_range: (f64, f64),
    /// Standard deviation of per-note duration jitter (relative).
    pub duration_jitter: f64,
    /// Standard deviation of per-note pitch error in semitones.
    pub interval_error: f64,
    /// Standard deviation of cumulative pitch drift per note, semitones.
    pub drift: f64,
    /// Absolute transposition is drawn uniformly from ± this, semitones.
    pub max_transposition: f64,
    /// Probability a note slips by an octave.
    pub octave_slip_prob: f64,
    /// Standard deviation of frame-level pitch wobble, semitones.
    pub frame_noise: f64,
    /// Onset scoop depth in semitones: hummers approach each note from
    /// below, which smears note boundaries for segmentation-based methods.
    pub scoop: f64,
    /// Per-note probability of a brief wrong-octave run from the pitch
    /// tracker (octave errors are the classic tracker failure mode).
    pub tracker_glitch_prob: f64,
    /// Nominal seconds per beat before tempo scaling.
    pub seconds_per_beat: f64,
}

impl SingerProfile {
    /// A competent amateur: near-correct intervals and timing.
    pub fn good() -> Self {
        SingerProfile {
            tempo_range: (0.85, 1.2),
            duration_jitter: 0.08,
            interval_error: 0.18,
            drift: 0.03,
            max_transposition: 3.0,
            octave_slip_prob: 0.0,
            frame_noise: 0.06,
            scoop: 0.8,
            tracker_glitch_prob: 0.06,
            seconds_per_beat: 0.5,
        }
    }

    /// A poor singer ("for example, by one of the authors", §5.1): strong
    /// timing and interval errors, occasional octave slips.
    pub fn poor() -> Self {
        SingerProfile {
            tempo_range: (0.5, 2.0),
            duration_jitter: 0.6,
            interval_error: 1.0,
            drift: 0.15,
            max_transposition: 6.0,
            octave_slip_prob: 0.03,
            frame_noise: 0.15,
            scoop: 1.6,
            tracker_glitch_prob: 0.12,
            seconds_per_beat: 0.5,
        }
    }
}

/// A deterministic (seeded) humming simulator.
#[derive(Debug)]
pub struct HummingSimulator {
    profile: SingerProfile,
    rng: StdRng,
}

impl HummingSimulator {
    /// Creates a simulator for a profile; equal seeds hum identically.
    pub fn new(profile: SingerProfile, seed: u64) -> Self {
        HummingSimulator { profile, rng: StdRng::seed_from_u64(seed) }
    }

    /// The profile in use.
    pub fn profile(&self) -> &SingerProfile {
        &self.profile
    }

    /// Hums a melody at the note level: global transposition and tempo, then
    /// per-note interval error, drift, duration jitter and octave slips.
    pub fn sing_notes(&mut self, melody: &Melody) -> Vec<SungNote> {
        let p = self.profile;
        let transpose = self.uniform(-p.max_transposition, p.max_transposition);
        let tempo = self.uniform(p.tempo_range.0, p.tempo_range.1);
        let mut drift = 0.0;
        let mut out = Vec::with_capacity(melody.len());
        for note in melody.notes() {
            drift += self.gaussian() * p.drift;
            let mut midi =
                note.pitch as f64 + transpose + drift + self.gaussian() * p.interval_error;
            if self.rng.random_bool(p.octave_slip_prob) {
                midi += if self.rng.random_bool(0.5) { 12.0 } else { -12.0 };
            }
            let jitter = (1.0 + self.gaussian() * p.duration_jitter).max(0.3);
            let seconds = note.beats * p.seconds_per_beat * tempo * jitter;
            // A human voice cannot leave its register: clamp to roughly
            // A2..G5, which also keeps fundamentals inside the 80-1000 Hz
            // window the pitch tracker searches.
            out.push(SungNote { midi: midi.clamp(45.0, 83.0), seconds: seconds.max(0.05) });
        }
        out
    }

    /// Hums a melody straight to a pitch time series at `frame_seconds`
    /// resolution (default pipeline uses 10 ms), including inter-note glides
    /// and frame-level wobble — the signal shape of the paper's Figure 1.
    pub fn sing_series(&mut self, melody: &Melody, frame_seconds: f64) -> Vec<f64> {
        assert!(frame_seconds > 0.0, "frame duration must be positive");
        let notes = self.sing_notes(melody);
        let p = self.profile;
        let mut out = Vec::new();
        let mut prev: Option<f64> = None;
        for note in &notes {
            let frames = ((note.seconds / frame_seconds).round() as usize).max(1);
            // Legato: small intervals are connected by slow glides that a
            // stability-based segmenter tracks straight through, merging the
            // notes — the paper's "no good algorithm is known to segment".
            let interval = prev.map_or(f64::INFINITY, |from: f64| (note.midi - from).abs());
            let glide_frames =
                if interval <= 2.5 { (frames / 2).min(12) } else { (frames / 4).min(6) };
            let scoop_frames = (frames / 3).min(8);
            // Occasional short wrong-octave run: the pitch tracker locking
            // onto a harmonic for a few frames.
            let glitch = if self.rng.random_bool(p.tracker_glitch_prob) {
                let start = self.rng.random_range(0..frames);
                let span = 3 + self.rng.random_range(0..5usize);
                let offset = if self.rng.random_bool(0.5) { 12.0 } else { -12.0 };
                Some((start, start + span, offset))
            } else {
                None
            };
            for f in 0..frames {
                let mut base = match prev {
                    Some(from) if f < glide_frames => {
                        let u = (f + 1) as f64 / (glide_frames + 1) as f64;
                        from + (note.midi - from) * u
                    }
                    _ => note.midi,
                };
                // Onset scoop: approach the target from below, decaying.
                if f < scoop_frames {
                    let u = 1.0 - (f as f64 / scoop_frames as f64);
                    base -= p.scoop * u * u;
                }
                if let Some((lo, hi, offset)) = glitch {
                    if (lo..hi).contains(&f) {
                        base += offset;
                    }
                }
                out.push(base + self.gaussian() * p.frame_noise);
            }
            prev = Some(note.midi);
        }
        out
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            self.rng.random_range(lo..hi)
        }
    }

    /// Standard normal via the sum-of-uniforms (Irwin-Hall) approximation —
    /// plenty accurate for perturbation noise and branch-free.
    fn gaussian(&mut self) -> f64 {
        let sum: f64 = (0..12).map(|_| self.rng.random::<f64>()).sum();
        sum - 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::melody::Note;

    fn melody() -> Melody {
        Melody::new(vec![
            Note::new(60, 1.0),
            Note::new(62, 0.5),
            Note::new(64, 1.0),
            Note::new(67, 2.0),
            Note::new(64, 1.0),
            Note::new(60, 1.5),
        ])
    }

    #[test]
    fn singing_is_deterministic_per_seed() {
        let m = melody();
        let a = HummingSimulator::new(SingerProfile::good(), 7).sing_notes(&m);
        let b = HummingSimulator::new(SingerProfile::good(), 7).sing_notes(&m);
        assert_eq!(a, b);
        let c = HummingSimulator::new(SingerProfile::good(), 8).sing_notes(&m);
        assert_ne!(a, c);
    }

    #[test]
    fn note_count_is_preserved() {
        let m = melody();
        let sung = HummingSimulator::new(SingerProfile::poor(), 3).sing_notes(&m);
        assert_eq!(sung.len(), m.len());
    }

    #[test]
    fn good_singer_keeps_intervals_roughly_correct() {
        let m = melody();
        let mut max_err: f64 = 0.0;
        for seed in 0..20 {
            let sung = HummingSimulator::new(SingerProfile::good(), seed).sing_notes(&m);
            for (w, orig) in sung.windows(2).zip(m.intervals()) {
                let err = ((w[1].midi - w[0].midi) - orig as f64).abs();
                max_err = max_err.max(err);
            }
        }
        assert!(max_err < 2.5, "good-singer interval error {max_err}");
    }

    #[test]
    fn poor_singer_is_noisier_than_good() {
        let m = melody();
        let err = |profile: SingerProfile| -> f64 {
            let mut total = 0.0;
            let mut count = 0;
            for seed in 0..30 {
                let sung = HummingSimulator::new(profile, seed).sing_notes(&m);
                for (w, orig) in sung.windows(2).zip(m.intervals()) {
                    total += ((w[1].midi - w[0].midi) - orig as f64).abs();
                    count += 1;
                }
            }
            total / count as f64
        };
        assert!(err(SingerProfile::poor()) > 1.5 * err(SingerProfile::good()));
    }

    #[test]
    fn tempo_stays_in_profile_range() {
        let m = melody();
        let nominal: f64 = m.total_beats() * 0.5;
        for seed in 0..30 {
            let sung = HummingSimulator::new(SingerProfile::poor(), seed).sing_notes(&m);
            let total: f64 = sung.iter().map(|n| n.seconds).sum();
            let factor = total / nominal;
            // Duration jitter widens the band beyond the tempo range: over a
            // six-note melody the poor profile's jitter (sigma 0.6) moves the
            // mean note duration by up to ~45%, on top of tempo in [0.5, 2].
            assert!((0.3..=3.2).contains(&factor), "tempo factor {factor}");
        }
    }

    #[test]
    fn series_length_tracks_durations() {
        let m = melody();
        let mut sim = HummingSimulator::new(SingerProfile::good(), 11);
        let series = sim.sing_series(&m, 0.01);
        // ~7 beats * 0.5 s/beat = ~3.5 s → ~350 frames, within tempo range.
        assert!((200..=600).contains(&series.len()), "frames {}", series.len());
    }

    #[test]
    fn series_pitches_stay_near_sung_register() {
        let m = melody();
        let mut sim = HummingSimulator::new(SingerProfile::good(), 5);
        let series = sim.sing_series(&m, 0.01);
        // Octave tracker glitches can momentarily leave the register, so
        // allow one octave of slack around the sung range.
        for p in &series {
            assert!((44.0..=88.0).contains(p), "pitch {p}");
        }
    }

    #[test]
    fn gaussian_has_unit_scale() {
        let mut sim = HummingSimulator::new(SingerProfile::good(), 42);
        let samples: Vec<f64> = (0..4000).map(|_| sim.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.08, "mean {mean}");
        assert!((var - 1.0).abs() < 0.12, "variance {var}");
    }

    #[test]
    fn octave_slips_occur_for_poor_singers() {
        let m = Melody::new(vec![Note::new(60, 1.0); 40]);
        let mut slips = 0;
        for seed in 0..40 {
            let sung = HummingSimulator::new(SingerProfile::poor(), seed).sing_notes(&m);
            for w in sung.windows(2) {
                if (w[1].midi - w[0].midi).abs() > 8.0 {
                    slips += 1;
                }
            }
        }
        assert!(slips > 0, "expected at least one octave slip across 40 hums");
    }
}
