//! The contour-matching baseline (paper §2, Table 2).
//!
//! Pre-existing query-by-humming systems transcribe the hum into discrete
//! notes, reduce the notes to a contour string over a small alphabet
//! (U/D/S, optionally refined with u/d), and rank melodies by edit distance,
//! sometimes after a q-gram filter. The paper's critique is twofold: contour
//! alone under-discriminates, and — more fundamentally — "no good algorithm
//! is known to segment such a time series of pitches into discrete notes."
//!
//! This module implements the whole baseline: a stability-based note
//! segmenter over the pitch series (accurate on cleanly separated notes,
//! degraded by glides and legato — the documented failure mode), both
//! contour alphabets, Levenshtein and banded edit distances, a positional
//! q-gram count filter, and a ranking index.

use std::collections::HashMap;

use crate::melody::Melody;

/// One segmented note: a representative pitch and its extent in frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoteSegment {
    /// Median pitch of the segment (fractional MIDI).
    pub pitch: f64,
    /// Number of frames the segment spans.
    pub frames: usize,
}

/// Segmentation tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmenterConfig {
    /// A frame further than this (semitones) from the running segment pitch
    /// opens a new segment.
    pub jump_threshold: f64,
    /// Segments shorter than this many frames are discarded as transition
    /// noise (this is where legato glides eat real notes).
    pub min_frames: usize,
}

impl Default for SegmenterConfig {
    fn default() -> Self {
        SegmenterConfig { jump_threshold: 0.7, min_frames: 6 }
    }
}

/// Segments a pitch time series into notes by pitch stability.
///
/// Returns an empty vector for an empty series.
pub fn segment_notes(series: &[f64], config: &SegmenterConfig) -> Vec<NoteSegment> {
    let mut segments = Vec::new();
    let mut current: Vec<f64> = Vec::new();
    let mut running = 0.0f64;

    for &p in series {
        if current.is_empty() {
            current.push(p);
            running = p;
            continue;
        }
        if (p - running).abs() <= config.jump_threshold {
            current.push(p);
            // Exponential tracking keeps the reference stable under drift
            // but lets slow glides smear segments together — realistic.
            running = 0.8 * running + 0.2 * p;
        } else {
            flush(&mut segments, &mut current, config);
            current.push(p);
            running = p;
        }
    }
    flush(&mut segments, &mut current, config);
    segments
}

fn flush(segments: &mut Vec<NoteSegment>, current: &mut Vec<f64>, config: &SegmenterConfig) {
    if current.len() >= config.min_frames {
        let mut sorted = current.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite pitches"));
        segments.push(NoteSegment { pitch: sorted[sorted.len() / 2], frames: current.len() });
    }
    current.clear();
}

/// Contour alphabet granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContourAlphabet {
    /// U / D / S.
    Three,
    /// U / u / S / d / D — "u" and "d" are small moves, "U" and "D" large.
    Five,
}

/// Converts successive pitch differences to contour letters.
pub fn contour_from_pitches(pitches: &[f64], alphabet: ContourAlphabet) -> Vec<u8> {
    pitches
        .windows(2)
        .map(|w| letter(w[1] - w[0], alphabet))
        .collect()
}

/// Contour of a symbolic melody (exact, no segmentation involved) — how the
/// database side is encoded.
pub fn melody_contour(melody: &Melody, alphabet: ContourAlphabet) -> Vec<u8> {
    let pitches: Vec<f64> = melody.notes().iter().map(|n| n.pitch as f64).collect();
    contour_from_pitches(&pitches, alphabet)
}

/// Contour of a hummed pitch series: segment first, then compare segment
/// pitches — the error-prone preprocessing stage the paper criticizes.
pub fn series_contour(
    series: &[f64],
    segmenter: &SegmenterConfig,
    alphabet: ContourAlphabet,
) -> Vec<u8> {
    let segments = segment_notes(series, segmenter);
    let pitches: Vec<f64> = segments.iter().map(|s| s.pitch).collect();
    contour_from_pitches(&pitches, alphabet)
}

fn letter(diff: f64, alphabet: ContourAlphabet) -> u8 {
    match alphabet {
        ContourAlphabet::Three => {
            if diff > 0.5 {
                b'U'
            } else if diff < -0.5 {
                b'D'
            } else {
                b'S'
            }
        }
        ContourAlphabet::Five => {
            if diff > 2.5 {
                b'U'
            } else if diff > 0.5 {
                b'u'
            } else if diff < -2.5 {
                b'D'
            } else if diff < -0.5 {
                b'd'
            } else {
                b'S'
            }
        }
    }
}

/// Levenshtein edit distance (unit costs).
pub fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut curr = vec![0usize; m + 1];
    for i in 1..=n {
        curr[0] = i;
        for j in 1..=m {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            curr[j] = sub.min(prev[j] + 1).min(curr[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Banded edit distance: exact when the true distance is at most `band`,
/// otherwise returns a value `> band` (saturated). Much faster for ranking
/// with a cutoff.
pub fn banded_edit_distance(a: &[u8], b: &[u8], band: usize) -> usize {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > band {
        return band + 1;
    }
    if n == 0 {
        return m;
    }
    let big = band + 1;
    let mut prev = vec![big; m + 1];
    let mut curr = vec![big; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(band.min(m) + 1) {
        *p = j;
    }
    for i in 1..=n {
        let j_lo = i.saturating_sub(band).max(1);
        let j_hi = (i + band).min(m);
        curr[j_lo - 1] = if j_lo == 1 { i } else { big };
        for j in j_lo..=j_hi {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            let del = if j < prev.len() { prev[j] + 1 } else { big };
            let ins = curr[j - 1] + 1;
            curr[j] = sub.min(del).min(ins).min(big);
        }
        if j_hi < m {
            curr[j_hi + 1] = big;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].min(big)
}

/// q-gram profile of a string.
pub fn qgram_profile(s: &[u8], q: usize) -> HashMap<&[u8], usize> {
    let mut map = HashMap::new();
    if q == 0 || s.len() < q {
        return map;
    }
    for gram in s.windows(q) {
        *map.entry(gram).or_insert(0) += 1;
    }
    map
}

/// The q-gram lower bound on edit distance:
/// `ed(a, b) ≥ |profile(a) Δ profile(b)| / (2q)`.
pub fn qgram_lower_bound(a: &[u8], b: &[u8], q: usize) -> usize {
    if q == 0 {
        return 0;
    }
    let pa = qgram_profile(a, q);
    let pb = qgram_profile(b, q);
    let mut diff = 0usize;
    for (gram, &ca) in &pa {
        let cb = pb.get(gram).copied().unwrap_or(0);
        diff += ca.abs_diff(cb);
    }
    for (gram, &cb) in &pb {
        if !pa.contains_key(gram) {
            diff += cb;
        }
    }
    diff.div_ceil(2 * q)
}

/// A contour-string retrieval index over a melody database.
#[derive(Debug, Clone)]
pub struct ContourIndex {
    alphabet: ContourAlphabet,
    segmenter: SegmenterConfig,
    qgram: usize,
    entries: Vec<(u64, Vec<u8>)>,
}

impl ContourIndex {
    /// Creates an empty index. `qgram = 0` disables the filter.
    pub fn new(alphabet: ContourAlphabet, segmenter: SegmenterConfig, qgram: usize) -> Self {
        ContourIndex { alphabet, segmenter, qgram, entries: Vec::new() }
    }

    /// Indexes a melody (exact symbolic contour).
    pub fn insert(&mut self, id: u64, melody: &Melody) {
        self.entries.push((id, melody_contour(melody, self.alphabet)));
    }

    /// Number of indexed melodies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ranks all melodies against a hummed pitch series by ascending edit
    /// distance (segmentation happens here, on the query). Ties are ordered
    /// by id for determinism.
    pub fn rank(&self, hummed_series: &[f64]) -> Vec<(u64, usize)> {
        let query = series_contour(hummed_series, &self.segmenter, self.alphabet);
        let mut scored: Vec<(u64, usize)> = self
            .entries
            .iter()
            .map(|(id, contour)| (*id, edit_distance(&query, contour)))
            .collect();
        scored.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        scored
    }

    /// Rank position (1-based) of `target` for the given hummed series.
    pub fn rank_of(&self, hummed_series: &[f64], target: u64) -> Option<usize> {
        self.rank(hummed_series).iter().position(|(id, _)| *id == target).map(|p| p + 1)
    }

    /// The `k` best melodies, using the q-gram lower bound to skip the edit
    /// DP and the banded DP to cut it short — the "q-grams to speed up the
    /// similarity query" technique the paper attributes to the string-based
    /// systems. Returns the same ids/distances as `rank(...).truncate(k)`
    /// plus a count of how many full DPs were avoided.
    pub fn top_k(&self, hummed_series: &[f64], k: usize) -> (Vec<(u64, usize)>, usize) {
        let query = series_contour(hummed_series, &self.segmenter, self.alphabet);
        // Clamped preallocation: never reserve more than one slot per entry
        // (and never overflow `k + 1`) however large the requested `k` is.
        let mut best: Vec<(u64, usize)> = Vec::with_capacity(k.min(self.entries.len()) + 1);
        let mut skipped = 0usize;
        // Current k-th distance (the pruning threshold).
        let threshold = |best: &Vec<(u64, usize)>| {
            if best.len() < k {
                usize::MAX
            } else {
                best.last().expect("nonempty").1
            }
        };
        for (id, contour) in &self.entries {
            let cutoff = threshold(&best);
            if self.qgram > 0
                && cutoff != usize::MAX
                && qgram_lower_bound(&query, contour, self.qgram) > cutoff
            {
                skipped += 1;
                continue;
            }
            let d = if cutoff == usize::MAX {
                edit_distance(&query, contour)
            } else {
                let banded = banded_edit_distance(&query, contour, cutoff);
                if banded > cutoff {
                    continue; // provably not among the best k
                }
                banded
            };
            // Insert keeping (distance, id) order.
            let pos = best
                .binary_search_by(|probe| probe.1.cmp(&d).then(probe.0.cmp(id)))
                .unwrap_or_else(|p| p);
            best.insert(pos, (*id, d));
            best.truncate(k);
        }
        (best, skipped)
    }

    /// All melodies within edit distance `max_distance` of the hummed
    /// series, ascending. The q-gram bound prunes before any DP runs; the
    /// banded DP bounds the rest.
    pub fn range(&self, hummed_series: &[f64], max_distance: usize) -> Vec<(u64, usize)> {
        let query = series_contour(hummed_series, &self.segmenter, self.alphabet);
        let mut out: Vec<(u64, usize)> = self
            .entries
            .iter()
            .filter(|(_, contour)| {
                self.qgram == 0
                    || qgram_lower_bound(&query, contour, self.qgram) <= max_distance
            })
            .filter_map(|(id, contour)| {
                let d = banded_edit_distance(&query, contour, max_distance);
                (d <= max_distance).then_some((*id, d))
            })
            .collect();
        out.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::melody::Note;

    #[test]
    fn segmentation_recovers_clean_notes() {
        // Three flat notes, clearly separated in pitch.
        let mut series = Vec::new();
        series.extend(std::iter::repeat_n(60.0, 20));
        series.extend(std::iter::repeat_n(64.0, 20));
        series.extend(std::iter::repeat_n(62.0, 20));
        let segs = segment_notes(&series, &SegmenterConfig::default());
        assert_eq!(segs.len(), 3);
        assert!((segs[0].pitch - 60.0).abs() < 0.01);
        assert!((segs[1].pitch - 64.0).abs() < 0.01);
        assert!((segs[2].pitch - 62.0).abs() < 0.01);
    }

    #[test]
    fn legato_glide_corrupts_segmentation() {
        // The same three notes connected by slow glides: the segmenter
        // tracks through the glide and merges/miscounts notes — the paper's
        // core criticism of the contour pipeline.
        let mut series = Vec::new();
        series.extend(std::iter::repeat_n(60.0, 20));
        for i in 0..30 {
            series.push(60.0 + 4.0 * (i as f64 / 30.0));
        }
        series.extend(std::iter::repeat_n(64.0, 20));
        let segs = segment_notes(&series, &SegmenterConfig::default());
        assert_ne!(segs.len(), 2, "a slow glide should not segment cleanly into 2 notes");
    }

    #[test]
    fn repeated_pitch_is_one_segment() {
        let series = vec![66.0; 50];
        let segs = segment_notes(&series, &SegmenterConfig::default());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].frames, 50);
    }

    #[test]
    fn contour_letters_three_and_five() {
        let pitches = [60.0, 62.0, 62.2, 58.0, 59.0];
        assert_eq!(contour_from_pitches(&pitches, ContourAlphabet::Three), b"USDU".to_vec());
        assert_eq!(contour_from_pitches(&pitches, ContourAlphabet::Five), b"uSDu".to_vec());
    }

    #[test]
    fn melody_contour_matches_hand_computation() {
        let m = Melody::new(vec![
            Note::new(60, 1.0),
            Note::new(64, 1.0),
            Note::new(64, 1.0),
            Note::new(62, 1.0),
        ]);
        assert_eq!(melody_contour(&m, ContourAlphabet::Three), b"USD".to_vec());
        assert_eq!(melody_contour(&m, ContourAlphabet::Five), b"USd".to_vec());
    }

    #[test]
    fn edit_distance_known_values() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"abc", b"abc"), 0);
        assert_eq!(edit_distance(b"abc", b"axc"), 1);
    }

    #[test]
    fn edit_distance_is_a_metric_on_samples() {
        let strings: Vec<&[u8]> = vec![b"UUDS", b"UDSS", b"DDUU", b"UUDD", b""];
        for a in &strings {
            assert_eq!(edit_distance(a, a), 0);
            for b in &strings {
                assert_eq!(edit_distance(a, b), edit_distance(b, a));
                for c in &strings {
                    assert!(
                        edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c),
                        "triangle inequality"
                    );
                }
            }
        }
    }

    #[test]
    fn banded_matches_exact_within_band() {
        let a = b"UUDDSUDSUU";
        let b = b"UUDSSUDDUU";
        let exact = edit_distance(a, b);
        for band in exact..exact + 3 {
            assert_eq!(banded_edit_distance(a, b, band), exact);
        }
        assert!(banded_edit_distance(a, b, exact - 1) > exact - 1);
    }

    #[test]
    fn banded_saturates_for_distant_strings() {
        assert_eq!(banded_edit_distance(b"UUUUUUUU", b"DDDDDDDD", 3), 4);
        assert_eq!(banded_edit_distance(b"UU", b"UUUUUUUU", 2), 3); // length gap
    }

    #[test]
    fn qgram_bound_is_a_lower_bound() {
        let cases: Vec<(&[u8], &[u8])> =
            vec![(b"UUDSUD", b"UUDSSD"), (b"UDUDUD", b"DUDUDU"), (b"SSSS", b"UUUU")];
        for (a, b) in cases {
            for q in 1..=3 {
                assert!(qgram_lower_bound(a, b, q) <= edit_distance(a, b), "q={q}");
            }
        }
    }

    #[test]
    fn index_ranks_exact_contour_match_first() {
        let melodies: Vec<Melody> = (0..20)
            .map(|s| {
                Melody::new(
                    (0..10)
                        .map(|i| Note::new(60 + ((i * (s + 2)) % 7) as u8, 1.0))
                        .collect(),
                )
            })
            .collect();
        let mut index =
            ContourIndex::new(ContourAlphabet::Five, SegmenterConfig::default(), 2);
        for (i, m) in melodies.iter().enumerate() {
            index.insert(i as u64, m);
        }
        // A clean, well-separated rendition of melody 4 (flat 12-frame notes).
        let series: Vec<f64> = melodies[4]
            .notes()
            .iter()
            .flat_map(|n| std::iter::repeat_n(n.pitch as f64, 12))
            .collect();
        let rank = index.rank_of(&series, 4).unwrap();
        assert!(rank <= 3, "clean rendition ranked {rank}");
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = ContourIndex::new(ContourAlphabet::Three, SegmenterConfig::default(), 0);
        assert!(index.is_empty());
        assert!(index.rank(&[60.0; 30]).is_empty());
        assert_eq!(index.rank_of(&[60.0; 30], 5), None);
    }
}
