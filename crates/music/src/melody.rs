//! The `(Note, Duration)` melody model and its time-series rendering
//! (paper §3.2).

/// One melody note.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Note {
    /// MIDI pitch number (60 = middle C).
    pub pitch: u8,
    /// Duration in beats (quarter notes).
    pub beats: f64,
}

impl Note {
    /// Creates a note.
    ///
    /// # Panics
    /// Panics if the pitch exceeds 127 or the duration is not positive.
    pub fn new(pitch: u8, beats: f64) -> Self {
        assert!(pitch <= 127, "MIDI pitch out of range");
        assert!(beats > 0.0, "duration must be positive");
        Note { pitch, beats }
    }
}

/// A monophonic melody: a sequence of `(Note, Duration)` tuples. Rests are
/// deliberately unrepresented (§3.2: silent information is ignored).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Melody {
    notes: Vec<Note>,
}

impl Melody {
    /// Creates a melody from notes.
    pub fn new(notes: Vec<Note>) -> Self {
        Melody { notes }
    }

    /// The notes.
    pub fn notes(&self) -> &[Note] {
        &self.notes
    }

    /// Number of notes.
    pub fn len(&self) -> usize {
        self.notes.len()
    }

    /// `true` if there are no notes.
    pub fn is_empty(&self) -> bool {
        self.notes.is_empty()
    }

    /// Total duration in beats.
    pub fn total_beats(&self) -> f64 {
        self.notes.iter().map(|n| n.beats).sum()
    }

    /// Appends a note.
    pub fn push(&mut self, note: Note) {
        self.notes.push(note);
    }

    /// The melody transposed by `semitones` (clamped to the MIDI range).
    pub fn transposed(&self, semitones: i8) -> Melody {
        Melody {
            notes: self
                .notes
                .iter()
                .map(|n| Note {
                    pitch: (n.pitch as i16 + semitones as i16).clamp(0, 127) as u8,
                    beats: n.beats,
                })
                .collect(),
        }
    }

    /// The §3.2 time-series representation: each note's pitch repeated for
    /// its duration, sampled at `samples_per_beat` points per beat. Each
    /// note contributes at least one sample so very short notes are not
    /// silently dropped.
    ///
    /// # Panics
    /// Panics if `samples_per_beat` is zero.
    pub fn to_time_series(&self, samples_per_beat: usize) -> Vec<f64> {
        assert!(samples_per_beat > 0, "samples_per_beat must be positive");
        let mut out = Vec::with_capacity(
            (self.total_beats() * samples_per_beat as f64).ceil() as usize + self.notes.len(),
        );
        for note in &self.notes {
            let count = ((note.beats * samples_per_beat as f64).round() as usize).max(1);
            out.extend(std::iter::repeat_n(note.pitch as f64, count));
        }
        out
    }

    /// Sequence of pitch intervals between successive notes, in semitones.
    pub fn intervals(&self) -> Vec<i16> {
        self.notes.windows(2).map(|w| w[1].pitch as i16 - w[0].pitch as i16).collect()
    }

    /// Pitch range `(lowest, highest)`; `None` if empty.
    pub fn pitch_range(&self) -> Option<(u8, u8)> {
        let lo = self.notes.iter().map(|n| n.pitch).min()?;
        let hi = self.notes.iter().map(|n| n.pitch).max()?;
        Some((lo, hi))
    }
}

impl FromIterator<Note> for Melody {
    fn from_iter<I: IntoIterator<Item = Note>>(iter: I) -> Self {
        Melody { notes: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_melody() -> Melody {
        Melody::new(vec![Note::new(60, 1.0), Note::new(62, 0.5), Note::new(64, 2.0)])
    }

    #[test]
    fn totals_and_counts() {
        let m = sample_melody();
        assert_eq!(m.len(), 3);
        assert_eq!(m.total_beats(), 3.5);
        assert_eq!(m.pitch_range(), Some((60, 64)));
    }

    #[test]
    fn time_series_repeats_pitches_by_duration() {
        let m = sample_melody();
        let ts = m.to_time_series(2);
        // 1.0 beats -> 2 samples of 60; 0.5 -> 1 of 62; 2.0 -> 4 of 64.
        assert_eq!(ts, vec![60.0, 60.0, 62.0, 64.0, 64.0, 64.0, 64.0]);
    }

    #[test]
    fn short_notes_still_contribute_a_sample() {
        let m = Melody::new(vec![Note::new(60, 0.1), Note::new(72, 1.0)]);
        let ts = m.to_time_series(2);
        assert_eq!(ts[0], 60.0);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn transposition_shifts_all_pitches() {
        let m = sample_melody().transposed(5);
        assert_eq!(m.notes()[0].pitch, 65);
        assert_eq!(m.notes()[2].pitch, 69);
        // Intervals are invariant under transposition.
        assert_eq!(m.intervals(), sample_melody().intervals());
    }

    #[test]
    fn transposition_clamps_at_range_edges() {
        let m = Melody::new(vec![Note::new(126, 1.0)]).transposed(5);
        assert_eq!(m.notes()[0].pitch, 127);
        let m = Melody::new(vec![Note::new(2, 1.0)]).transposed(-5);
        assert_eq!(m.notes()[0].pitch, 0);
    }

    #[test]
    fn intervals_of_known_melody() {
        assert_eq!(sample_melody().intervals(), vec![2, 2]);
        assert!(Melody::default().intervals().is_empty());
    }

    #[test]
    fn empty_melody_behaviour() {
        let m = Melody::default();
        assert!(m.is_empty());
        assert_eq!(m.total_beats(), 0.0);
        assert_eq!(m.pitch_range(), None);
        assert!(m.to_time_series(4).is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let m: Melody = (0..3).map(|i| Note::new(60 + i, 1.0)).collect();
        assert_eq!(m.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_rejected() {
        let _ = Note::new(60, 0.0);
    }
}
