//! Music substrate: melodies, synthetic songbooks, humming simulation, and
//! the contour-matching baseline.
//!
//! The paper's music database is "a collection of melodies", each "a
//! sequence of the tuples (Note, Duration)" (§3.2), queried by hummed input
//! from singers of varying skill (§5.1) and compared against the traditional
//! *contour* string-matching approach (§2, Table 2). This crate provides all
//! of that:
//!
//! * [`melody`] — the `(Note, Duration)` melody model and its §3.2
//!   time-series rendering;
//! * [`songbook`] — a seeded generative songbook standing in for the
//!   manually entered Beatles corpus: tonal songs segmented into phrase
//!   melodies of 15–30 notes;
//! * [`humming`] — singer models that distort a melody exactly the way the
//!   paper says hummers do: absolute-pitch shift, global tempo scaling,
//!   per-note duration jitter (local time warping), interval error, octave
//!   slips, plus frame-level pitch wobble;
//! * [`contour`] — the competing approach: error-prone note segmentation of
//!   the hummed pitch series, contour alphabets (U/D/S and the finer
//!   five-letter variant), and edit-distance ranking with an optional q-gram
//!   filter;
//! * [`key`] — Krumhansl-Schmuckler key finding, used to validate the
//!   songbook generator against its own declared keys.

pub mod contour;
pub mod humming;
pub mod key;
pub mod melody;
pub mod songbook;

pub use humming::{HummingSimulator, SingerProfile, SungNote};
pub use melody::{Melody, Note};
pub use songbook::{Song, Songbook, SongbookConfig};
