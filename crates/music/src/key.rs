//! Key finding (Krumhansl-Schmuckler).
//!
//! The songbook generates tonal melodies in a known key; this module closes
//! the loop by *estimating* the key from a melody with the classic
//! Krumhansl-Schmuckler profile-correlation algorithm: accumulate a
//! duration-weighted pitch-class histogram, correlate it against the 24
//! rotated major/minor probe-tone profiles, and report the best match.
//! Useful for corpus analytics and as independent validation that the
//! generator really writes in the key it claims.

use hum_linalg::vec_ops::correlation;

use crate::melody::Melody;

/// Krumhansl-Kessler major-key probe-tone profile (C major at index 0).
const MAJOR_PROFILE: [f64; 12] =
    [6.35, 2.23, 3.48, 2.33, 4.38, 4.09, 2.52, 5.19, 2.39, 3.66, 2.29, 2.88];
/// Krumhansl-Kessler minor-key probe-tone profile (C minor at index 0).
const MINOR_PROFILE: [f64; 12] =
    [6.33, 2.68, 3.52, 5.38, 2.60, 3.53, 2.54, 4.75, 3.98, 2.69, 3.34, 3.17];

/// An estimated key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyEstimate {
    /// Tonic pitch class, 0 = C … 11 = B.
    pub tonic_pc: u8,
    /// `true` for major, `false` for minor.
    pub major: bool,
    /// Correlation score of the winning profile (−1..1).
    pub score: f64,
}

impl KeyEstimate {
    /// Conventional name ("C major", "F# minor", ...).
    pub fn name(&self) -> String {
        const NAMES: [&str; 12] =
            ["C", "C#", "D", "D#", "E", "F", "F#", "G", "G#", "A", "A#", "B"];
        format!("{} {}", NAMES[self.tonic_pc as usize], if self.major { "major" } else { "minor" })
    }
}

/// Duration-weighted pitch-class histogram of a melody.
pub fn pitch_class_histogram(melody: &Melody) -> [f64; 12] {
    let mut hist = [0.0f64; 12];
    for note in melody.notes() {
        hist[(note.pitch % 12) as usize] += note.beats;
    }
    hist
}

/// Estimates the key of a melody (or several concatenated melodies via
/// [`estimate_key_multi`]). Returns `None` for an empty melody.
pub fn estimate_key(melody: &Melody) -> Option<KeyEstimate> {
    if melody.is_empty() {
        return None;
    }
    Some(best_key(&pitch_class_histogram(melody)))
}

/// Estimates one key over several melodies (e.g. all phrases of a song).
pub fn estimate_key_multi<'a>(melodies: impl IntoIterator<Item = &'a Melody>) -> Option<KeyEstimate> {
    let mut hist = [0.0f64; 12];
    let mut any = false;
    for melody in melodies {
        for note in melody.notes() {
            hist[(note.pitch % 12) as usize] += note.beats;
            any = true;
        }
    }
    any.then(|| best_key(&hist))
}

fn best_key(hist: &[f64; 12]) -> KeyEstimate {
    let mut best =
        KeyEstimate { tonic_pc: 0, major: true, score: f64::NEG_INFINITY };
    for tonic in 0..12u8 {
        // Rotate the histogram so `tonic` sits at index 0.
        let rotated: Vec<f64> =
            (0..12).map(|i| hist[(i + tonic as usize) % 12]).collect();
        for (major, profile) in [(true, &MAJOR_PROFILE), (false, &MINOR_PROFILE)] {
            let score = correlation(&rotated, profile);
            if score > best.score {
                best = KeyEstimate { tonic_pc: tonic, major, score };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::melody::Note;
    use crate::songbook::{Songbook, SongbookConfig};

    fn scale_melody(tonic: u8, intervals: &[u8]) -> Melody {
        intervals.iter().map(|&i| Note::new(tonic + i, 1.0)).collect()
    }

    #[test]
    fn c_major_scale_is_c_major() {
        let m = scale_melody(60, &[0, 2, 4, 5, 7, 9, 11, 12, 7, 4, 0]);
        let key = estimate_key(&m).unwrap();
        assert_eq!(key.tonic_pc, 0);
        assert!(key.major, "got {}", key.name());
        assert!(key.score > 0.7);
    }

    #[test]
    fn a_minor_scale_is_a_minor() {
        // Natural minor on A, tonic-weighted.
        let m = scale_melody(57, &[0, 2, 3, 5, 7, 8, 10, 12, 7, 3, 0, 0]);
        let key = estimate_key(&m).unwrap();
        assert_eq!(key.name(), "A minor");
    }

    #[test]
    fn transposition_moves_the_tonic() {
        let c = scale_melody(60, &[0, 2, 4, 5, 7, 9, 11, 12, 7, 4, 0]);
        let up_fifth = c.transposed(7);
        let key = estimate_key(&up_fifth).unwrap();
        assert_eq!(key.name(), "G major");
    }

    #[test]
    fn songbook_keys_are_recovered_from_whole_songs() {
        // Independent validation of the generator: pooling all phrases of a
        // song, the K-S estimate should usually agree with the generated
        // key (phrase-level estimates are allowed to wander more).
        let book = Songbook::generate(&SongbookConfig {
            songs: 20,
            phrases_per_song: 10,
            ..SongbookConfig::default()
        });
        let mut exact = 0;
        let mut related = 0;
        for song in &book.songs {
            let key = estimate_key_multi(song.phrases.iter()).unwrap();
            let tonic = song.tonic % 12;
            if key.tonic_pc == tonic {
                exact += 1;
                related += 1;
                continue;
            }
            // Melodic (chordless) input famously confuses closely related
            // keys: the dominant/subdominant (±7 semitones) and the
            // relative major/minor share six of seven scale tones.
            let relative =
                if song.major { (tonic + 9) % 12 } else { (tonic + 3) % 12 };
            let is_related = key.tonic_pc == (tonic + 7) % 12
                || key.tonic_pc == (tonic + 5) % 12
                || key.tonic_pc == relative;
            if is_related {
                related += 1;
            }
        }
        assert!(exact >= 8, "only {exact}/20 songs matched their generated tonic exactly");
        assert!(related >= 16, "only {related}/20 songs landed in the related-key set");
    }

    #[test]
    fn empty_melody_has_no_key() {
        assert_eq!(estimate_key(&Melody::default()), None);
        assert_eq!(estimate_key_multi(std::iter::empty()), None);
    }

    #[test]
    fn histogram_weights_by_duration() {
        let m = Melody::new(vec![Note::new(60, 3.0), Note::new(62, 1.0)]);
        let h = pitch_class_histogram(&m);
        assert_eq!(h[0], 3.0);
        assert_eq!(h[2], 1.0);
        assert_eq!(h.iter().sum::<f64>(), 4.0);
    }

    #[test]
    fn key_names_are_well_formed() {
        let k = KeyEstimate { tonic_pc: 6, major: false, score: 0.5 };
        assert_eq!(k.name(), "F# minor");
    }
}
