//! Property-based tests for the music substrate.

use hum_music::contour::{
    banded_edit_distance, contour_from_pitches, edit_distance, qgram_lower_bound,
    segment_notes, ContourAlphabet, SegmenterConfig,
};
use hum_music::{HummingSimulator, Melody, Note, SingerProfile};
use proptest::prelude::*;

fn arb_melody() -> impl Strategy<Value = Melody> {
    proptest::collection::vec((40u8..95, prop_oneof![Just(0.5f64), Just(1.0), Just(1.5), Just(2.0)]), 2..30)
        .prop_map(|notes| notes.into_iter().map(|(p, b)| Note::new(p, b)).collect())
}

fn arb_contour() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'U'), Just(b'u'), Just(b'S'), Just(b'd'), Just(b'D')], 0..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn time_series_length_matches_durations(melody in arb_melody(), spb in 1usize..8) {
        let ts = melody.to_time_series(spb);
        // Every rhythm value is a multiple of 0.5 with spb ≥ 2 exact; with
        // rounding each note contributes ≥ 1 sample.
        prop_assert!(ts.len() >= melody.len());
        let expected: usize = melody
            .notes()
            .iter()
            .map(|n| ((n.beats * spb as f64).round() as usize).max(1))
            .sum();
        prop_assert_eq!(ts.len(), expected);
        // Values are exactly the melody pitches.
        for v in &ts {
            prop_assert!(melody.notes().iter().any(|n| n.pitch as f64 == *v));
        }
    }

    #[test]
    fn transposition_preserves_interval_structure(melody in arb_melody(), t in -10i8..10) {
        let transposed = melody.transposed(t);
        // Away from the clamp boundaries the contours agree letter for letter.
        let (lo, hi) = melody.pitch_range().unwrap();
        prop_assume!(lo as i16 + (t as i16) >= 0 && hi as i16 + (t as i16) <= 127);
        let a: Vec<f64> = melody.notes().iter().map(|n| n.pitch as f64).collect();
        let b: Vec<f64> = transposed.notes().iter().map(|n| n.pitch as f64).collect();
        prop_assert_eq!(
            contour_from_pitches(&a, ContourAlphabet::Five),
            contour_from_pitches(&b, ContourAlphabet::Five)
        );
    }

    #[test]
    fn edit_distance_is_a_metric(a in arb_contour(), b in arb_contour(), c in arb_contour()) {
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
        // Bounded by the longer length.
        prop_assert!(edit_distance(&a, &b) <= a.len().max(b.len()));
    }

    #[test]
    fn banded_edit_distance_is_exact_within_band(a in arb_contour(), b in arb_contour()) {
        let exact = edit_distance(&a, &b);
        prop_assert_eq!(banded_edit_distance(&a, &b, exact.max(1)), exact);
        let reported = banded_edit_distance(&a, &b, 3);
        if exact <= 3 {
            prop_assert_eq!(reported, exact);
        } else {
            prop_assert!(reported > 3);
        }
    }

    #[test]
    fn qgram_bound_never_exceeds_edit_distance(a in arb_contour(), b in arb_contour(), q in 1usize..4) {
        prop_assert!(qgram_lower_bound(&a, &b, q) <= edit_distance(&a, &b));
    }

    #[test]
    fn segmentation_output_is_well_formed(
        series in proptest::collection::vec(40.0f64..90.0, 0..300),
    ) {
        let segs = segment_notes(&series, &SegmenterConfig::default());
        let total: usize = segs.iter().map(|s| s.frames).sum();
        prop_assert!(total <= series.len());
        for s in &segs {
            prop_assert!(s.frames >= SegmenterConfig::default().min_frames);
            prop_assert!(s.pitch.is_finite());
        }
    }

    #[test]
    fn humming_is_deterministic_and_finite(melody in arb_melody(), seed in 0u64..500) {
        let a = HummingSimulator::new(SingerProfile::poor(), seed).sing_series(&melody, 0.01);
        let b = HummingSimulator::new(SingerProfile::poor(), seed).sing_series(&melody, 0.01);
        prop_assert_eq!(&a, &b);
        prop_assert!(!a.is_empty());
        for v in &a {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn sung_durations_respect_floors(melody in arb_melody(), seed in 0u64..200) {
        let sung = HummingSimulator::new(SingerProfile::poor(), seed).sing_notes(&melody);
        prop_assert_eq!(sung.len(), melody.len());
        for n in &sung {
            prop_assert!(n.seconds >= 0.05);
            prop_assert!((45.0..=83.0).contains(&n.midi), "register clamp: {}", n.midi);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn contour_top_k_agrees_with_exhaustive_rank(
        series in proptest::collection::vec(55.0f64..75.0, 30..150),
        k in 1usize..8,
    ) {
        use hum_music::contour::{ContourAlphabet, ContourIndex, SegmenterConfig};
        use hum_music::{Melody, Note};
        let melodies: Vec<Melody> = (0..25u8)
            .map(|s| {
                (0..12)
                    .map(|i| Note::new(58 + ((i * (s as usize + 2)) % 9) as u8, 1.0))
                    .collect()
            })
            .collect();
        let mut index = ContourIndex::new(ContourAlphabet::Five, SegmenterConfig::default(), 2);
        for (i, m) in melodies.iter().enumerate() {
            index.insert(i as u64, m);
        }
        let full = index.rank(&series);
        let (top, _skipped) = index.top_k(&series, k);
        prop_assert_eq!(&top[..], &full[..k.min(full.len())]);
    }

    #[test]
    fn contour_range_agrees_with_rank_filtering(
        series in proptest::collection::vec(55.0f64..75.0, 30..120),
        max in 0usize..12,
    ) {
        use hum_music::contour::{ContourAlphabet, ContourIndex, SegmenterConfig};
        use hum_music::{Melody, Note};
        let melodies: Vec<Melody> = (0..20u8)
            .map(|s| {
                (0..10)
                    .map(|i| Note::new(60 + ((i * 2 + s as usize) % 7) as u8, 1.0))
                    .collect()
            })
            .collect();
        let mut index = ContourIndex::new(ContourAlphabet::Three, SegmenterConfig::default(), 2);
        for (i, m) in melodies.iter().enumerate() {
            index.insert(i as u64, m);
        }
        let expected: Vec<(u64, usize)> =
            index.rank(&series).into_iter().filter(|(_, d)| *d <= max).collect();
        prop_assert_eq!(index.range(&series, max), expected);
    }
}
