//! Property-based tests: every backend must agree with brute force on every
//! query, for arbitrary point sets.

use hum_index::{GridFile, ItemId, LinearScan, Query, RStarTree, Rect, SpatialIndex};
use proptest::prelude::*;

fn points(dims: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(-50.0f64..50.0, dims..=dims),
        1..200,
    )
}

fn brute_range(points: &[Vec<f64>], q: &Query, eps: f64) -> Vec<ItemId> {
    let mut out: Vec<ItemId> = points
        .iter()
        .enumerate()
        .filter(|(_, p)| q.dist_to_point(p) <= eps)
        .map(|(i, _)| i as ItemId)
        .collect();
    out.sort_unstable();
    out
}

fn build_all(points: &[Vec<f64>], dims: usize) -> Vec<Box<dyn SpatialIndex>> {
    let mut backends: Vec<Box<dyn SpatialIndex>> = vec![
        Box::new(RStarTree::with_page_size(dims, 512)),
        Box::new(GridFile::with_params(dims, 4, 32, 512)),
        Box::new(LinearScan::with_page_size(dims, 512)),
    ];
    for b in &mut backends {
        for (i, p) in points.iter().enumerate() {
            b.insert(i as ItemId, p.clone());
        }
    }
    backends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn range_queries_agree_with_brute_force(
        pts in points(3),
        qx in -60.0f64..60.0,
        qy in -60.0f64..60.0,
        qz in -60.0f64..60.0,
        eps in 0.0f64..80.0,
    ) {
        let q = Query::Point(vec![qx, qy, qz]);
        let expected = brute_range(&pts, &q, eps);
        for backend in build_all(&pts, 3) {
            let (mut got, stats) = backend.range_query(&q, eps);
            got.sort_unstable();
            prop_assert_eq!(&got, &expected);
            prop_assert_eq!(stats.candidates as usize, expected.len());
        }
    }

    #[test]
    fn rect_queries_agree_with_brute_force(
        pts in points(2),
        lo in -40.0f64..0.0,
        side in 0.0f64..50.0,
        eps in 0.0f64..30.0,
    ) {
        let rect = Rect::new(vec![lo, lo], vec![lo + side, lo + side]);
        let q = Query::Rect(rect);
        let expected = brute_range(&pts, &q, eps);
        for backend in build_all(&pts, 2) {
            let (mut got, _) = backend.range_query(&q, eps);
            got.sort_unstable();
            prop_assert_eq!(&got, &expected);
        }
    }

    #[test]
    fn knn_is_sorted_correct_and_complete(
        pts in points(3),
        k in 1usize..20,
        qx in -60.0f64..60.0,
    ) {
        let q = Query::Point(vec![qx, 0.0, 0.0]);
        let mut brute: Vec<(ItemId, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i as ItemId, q.dist_to_point(p)))
            .collect();
        brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for backend in build_all(&pts, 3) {
            let (got, _) = backend.knn(&q, k);
            prop_assert_eq!(got.len(), k.min(pts.len()));
            for w in got.windows(2) {
                prop_assert!(w[0].1 <= w[1].1 + 1e-12);
            }
            for (g, b) in got.iter().zip(&brute) {
                prop_assert!((g.1 - b.1).abs() < 1e-9, "{} vs {}", g.1, b.1);
            }
        }
    }

    #[test]
    fn knn_radius_equals_range_count(pts in points(2), k in 1usize..15) {
        // The distance of the k-th neighbor must admit at least k points in
        // a range query — the invariant multi-step k-NN relies on.
        let q = Query::Point(vec![0.0, 0.0]);
        let tree = {
            let mut t = RStarTree::with_page_size(2, 512);
            for (i, p) in pts.iter().enumerate() {
                t.insert(i as ItemId, p.clone());
            }
            t
        };
        let (knn, _) = tree.knn(&q, k);
        if let Some(&(_, radius)) = knn.last() {
            let (range, _) = tree.range_query(&q, radius + 1e-9);
            prop_assert!(range.len() >= knn.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn removal_keeps_all_backends_consistent(
        pts in points(2),
        removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..30),
        eps in 0.0f64..60.0,
    ) {
        // Apply the same removal sequence to every backend and a model.
        let mut model: Vec<Option<Vec<f64>>> = pts.iter().cloned().map(Some).collect();
        let mut backends = build_all(&pts, 2);
        for idx in &removals {
            let id = idx.index(pts.len()) as ItemId;
            let expect = model[id as usize].take().is_some();
            for b in &mut backends {
                prop_assert_eq!(b.remove(id), expect);
            }
        }
        let q = Query::Point(vec![0.0, 0.0]);
        let mut expected: Vec<ItemId> = model
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i, p)))
            .filter(|(_, p)| q.dist_to_point(p) <= eps)
            .map(|(i, _)| i as ItemId)
            .collect();
        expected.sort_unstable();
        for b in &backends {
            let (mut got, _) = b.range_query(&q, eps);
            got.sort_unstable();
            prop_assert_eq!(&got, &expected);
        }
    }
}
