//! Multidimensional index substrate.
//!
//! GEMINI-style time-series indexing (paper §3.3) reduces each series to a
//! low-dimensional feature vector and stores the vectors in a spatial index.
//! This crate provides three interchangeable backends behind the
//! [`SpatialIndex`] trait:
//!
//! * [`rstar::RStarTree`] — an R\*-tree (Beckmann et al., SIGMOD 1990) with
//!   ChooseSubtree, R\* topological split and forced reinsertion. This is the
//!   backend the paper uses (via LibGist) for the large-database experiments.
//! * [`gridfile::GridFile`] — a bulk-loaded grid file with quantile linear
//!   scales, the alternative the paper cites from StatStream.
//! * [`linear::LinearScan`] — the trivial baseline every index must beat.
//!
//! Queries are geometric: a [`Query::Point`] (a reduced feature vector) or a
//! [`Query::Rect`] (the feature-space image of a time-series *envelope*,
//! which is a box). Every search reports [`QueryStats`] — candidates touched
//! and node/page accesses — because the paper evaluates indexing methods with
//! exactly these implementation-bias-free counters (Figs 9 and 10).

pub mod gridfile;
pub mod linear;
pub mod query;
pub mod rect;
pub mod rstar;
pub mod stats;

pub use gridfile::GridFile;
pub use linear::LinearScan;
pub use query::Query;
pub use rect::Rect;
pub use rstar::RStarTree;
pub use stats::QueryStats;

/// Identifier of an indexed item (assigned by the caller).
pub type ItemId = u64;

/// A point-set spatial index over fixed-dimension `f64` vectors.
pub trait SpatialIndex {
    /// Dimensionality of indexed points.
    fn dims(&self) -> usize;

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// `true` if no points are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts one point.
    ///
    /// # Panics
    /// Panics if `point.len() != self.dims()`.
    fn insert(&mut self, id: ItemId, point: Vec<f64>);

    /// All ids whose point lies within distance `epsilon` of the query
    /// (Euclidean; for rectangle queries, distance to the box), plus access
    /// statistics.
    fn range_query(&self, query: &Query, epsilon: f64) -> (Vec<ItemId>, QueryStats);

    /// The `k` nearest points to the query, as `(id, distance)` sorted by
    /// ascending distance, plus access statistics.
    fn knn(&self, query: &Query, k: usize) -> (Vec<(ItemId, f64)>, QueryStats);

    /// Removes the point stored under `id`. Returns `true` if something was
    /// removed.
    fn remove(&mut self, id: ItemId) -> bool;
}

impl<T: SpatialIndex + ?Sized> SpatialIndex for Box<T> {
    fn dims(&self) -> usize {
        (**self).dims()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn insert(&mut self, id: ItemId, point: Vec<f64>) {
        (**self).insert(id, point)
    }

    fn range_query(&self, query: &Query, epsilon: f64) -> (Vec<ItemId>, QueryStats) {
        (**self).range_query(query, epsilon)
    }

    fn knn(&self, query: &Query, k: usize) -> (Vec<(ItemId, f64)>, QueryStats) {
        (**self).knn(query, k)
    }

    fn remove(&mut self, id: ItemId) -> bool {
        (**self).remove(id)
    }
}
