//! Linear-scan baseline.
//!
//! Stores points in insertion order in fixed-size "pages" so that page-access
//! counts are comparable with the tree backends: a scan always reads every
//! page. The paper's scalability argument (§3.3) is precisely that this
//! baseline is untenable for large databases.

use crate::query::Query;
use crate::stats::QueryStats;
use crate::{ItemId, SpatialIndex};

/// A flat array of points, scanned in full by every query.
#[derive(Debug, Clone)]
pub struct LinearScan {
    dims: usize,
    page_capacity: usize,
    items: Vec<(ItemId, Vec<f64>)>,
}

impl LinearScan {
    /// Creates an empty scan container with the default 4 KiB page size.
    pub fn new(dims: usize) -> Self {
        Self::with_page_size(dims, 4096)
    }

    /// Creates an empty scan container; page capacity is derived from the
    /// entry size (point plus id), mirroring [`crate::rstar::RStarTree`].
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn with_page_size(dims: usize, page_bytes: usize) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        let entry = dims * 8 + 8;
        LinearScan { dims, page_capacity: (page_bytes / entry).max(1), items: Vec::new() }
    }

    /// Number of pages the stored points occupy.
    pub fn pages(&self) -> u64 {
        self.items.len().div_ceil(self.page_capacity) as u64
    }
}

impl SpatialIndex for LinearScan {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn insert(&mut self, id: ItemId, point: Vec<f64>) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        self.items.push((id, point));
    }

    fn remove(&mut self, id: ItemId) -> bool {
        match self.items.iter().position(|(found, _)| *found == id) {
            Some(pos) => {
                self.items.remove(pos);
                true
            }
            None => false,
        }
    }

    fn range_query(&self, query: &Query, epsilon: f64) -> (Vec<ItemId>, QueryStats) {
        assert_eq!(query.dims(), self.dims, "query dimensionality mismatch");
        let mut stats = QueryStats {
            node_accesses: self.pages(),
            leaf_accesses: self.pages(),
            ..QueryStats::default()
        };
        let mut out = Vec::new();
        for (id, p) in &self.items {
            stats.points_examined += 1;
            if query.dist_to_point(p) <= epsilon {
                stats.candidates += 1;
                out.push(*id);
            }
        }
        (out, stats)
    }

    fn knn(&self, query: &Query, k: usize) -> (Vec<(ItemId, f64)>, QueryStats) {
        assert_eq!(query.dims(), self.dims, "query dimensionality mismatch");
        let mut stats = QueryStats {
            node_accesses: self.pages(),
            leaf_accesses: self.pages(),
            points_examined: self.items.len() as u64,
            ..QueryStats::default()
        };
        let mut all: Vec<(ItemId, f64)> =
            self.items.iter().map(|(id, p)| (*id, query.dist_to_point(p))).collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        all.truncate(k);
        stats.candidates = all.len() as u64;
        (all, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_knn_agree_with_geometry() {
        let mut s = LinearScan::new(2);
        s.insert(1, vec![0.0, 0.0]);
        s.insert(2, vec![3.0, 4.0]);
        s.insert(3, vec![10.0, 0.0]);
        let q = Query::Point(vec![0.0, 0.0]);
        let (hits, stats) = s.range_query(&q, 5.0);
        assert_eq!(hits, vec![1, 2]);
        assert_eq!(stats.points_examined, 3);
        let (nn, _) = s.knn(&q, 2);
        assert_eq!(nn[0].0, 1);
        assert_eq!(nn[1].0, 2);
        assert!((nn[1].1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn every_query_reads_all_pages() {
        let mut s = LinearScan::with_page_size(2, 240); // 10 entries per page
        for i in 0..95 {
            s.insert(i, vec![i as f64, 0.0]);
        }
        assert_eq!(s.pages(), 10);
        let (_, stats) = s.range_query(&Query::Point(vec![0.0, 0.0]), 0.5);
        assert_eq!(stats.node_accesses, 10);
    }

    #[test]
    fn knn_with_k_larger_than_len() {
        let mut s = LinearScan::new(1);
        s.insert(7, vec![1.0]);
        let (nn, _) = s.knn(&Query::Point(vec![0.0]), 5);
        assert_eq!(nn.len(), 1);
    }

    #[test]
    fn empty_scan() {
        let s = LinearScan::new(3);
        assert!(s.is_empty());
        let (hits, stats) = s.range_query(&Query::Point(vec![0.0; 3]), 1.0);
        assert!(hits.is_empty());
        assert_eq!(stats.node_accesses, 0);
    }
}
