//! A grid file with quantile linear scales.
//!
//! The paper cites grid files (via StatStream \[35\]) as an alternative to the
//! R\*-tree for indexing reduced feature vectors. This implementation fixes
//! its linear scales when the first `sample_size` points have arrived (or on
//! the first query, whichever comes first), placing cut points at sample
//! quantiles so cells are roughly equally populated; afterwards points hash
//! directly into cells. Each cell is a bucket of pages; page accesses are
//! counted per bucket page touched, mirroring the disk model of the other
//! backends.

use std::collections::HashMap;

use crate::query::Query;
use crate::rect::Rect;
use crate::stats::QueryStats;
use crate::{ItemId, SpatialIndex};

/// Default number of points buffered before the scales are frozen.
const DEFAULT_SAMPLE: usize = 1024;
/// Default number of intervals per dimension.
const DEFAULT_RESOLUTION: usize = 8;

/// A grid file over `f64` points.
#[derive(Debug, Clone)]
pub struct GridFile {
    dims: usize,
    resolution: usize,
    sample_size: usize,
    page_capacity: usize,
    /// Cut points per dimension (len = resolution − 1), set once frozen.
    scales: Option<Vec<Vec<f64>>>,
    /// Buffered points prior to freezing.
    pending: Vec<(ItemId, Vec<f64>)>,
    /// Cell coordinates → bucket contents.
    cells: HashMap<Vec<u32>, Vec<(ItemId, Vec<f64>)>>,
    len: usize,
}

impl GridFile {
    /// Creates an empty grid file with default resolution, sample size, and
    /// 4 KiB pages.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        Self::with_params(dims, DEFAULT_RESOLUTION, DEFAULT_SAMPLE, 4096)
    }

    /// Creates an empty grid file with explicit parameters.
    ///
    /// # Panics
    /// Panics if `dims == 0` or `resolution < 2`.
    pub fn with_params(dims: usize, resolution: usize, sample_size: usize, page_bytes: usize) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        assert!(resolution >= 2, "need at least two intervals per dimension");
        let entry = dims * 8 + 8;
        GridFile {
            dims,
            resolution,
            sample_size: sample_size.max(1),
            page_capacity: (page_bytes / entry).max(1),
            scales: None,
            pending: Vec::new(),
            cells: HashMap::new(),
            len: 0,
        }
    }

    /// Number of populated cells.
    pub fn populated_cells(&self) -> usize {
        self.cells.len()
    }

    /// `true` once the linear scales are frozen.
    pub fn is_frozen(&self) -> bool {
        self.scales.is_some()
    }

    /// Freezes the linear scales from the points buffered so far and files
    /// them into cells. Called automatically by queries and once the sample
    /// is full.
    pub fn freeze(&mut self) {
        if self.scales.is_some() {
            return;
        }
        let mut scales = Vec::with_capacity(self.dims);
        for d in 0..self.dims {
            let mut coords: Vec<f64> = self.pending.iter().map(|(_, p)| p[d]).collect();
            coords.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
            let cuts = if coords.is_empty() {
                // No data: uniform unit scales as a harmless default.
                (1..self.resolution).map(|i| i as f64 / self.resolution as f64).collect()
            } else {
                (1..self.resolution)
                    .map(|i| {
                        let idx = i * coords.len() / self.resolution;
                        coords[idx.min(coords.len() - 1)]
                    })
                    .collect()
            };
            scales.push(cuts);
        }
        self.scales = Some(scales);
        for (id, p) in std::mem::take(&mut self.pending) {
            let cell = self.cell_of(&p);
            self.cells.entry(cell).or_default().push((id, p));
        }
    }

    fn cell_of(&self, p: &[f64]) -> Vec<u32> {
        let scales = self.scales.as_ref().expect("scales frozen");
        p.iter()
            .zip(scales)
            .map(|(x, cuts)| cuts.partition_point(|c| c < x) as u32)
            .collect()
    }

    /// The geometric region of a cell (unbounded edges clamped to ±∞).
    fn cell_rect(&self, cell: &[u32]) -> Rect {
        let scales = self.scales.as_ref().expect("scales frozen");
        let mut lo = Vec::with_capacity(self.dims);
        let mut hi = Vec::with_capacity(self.dims);
        for (d, &c) in cell.iter().enumerate() {
            let cuts = &scales[d];
            lo.push(if c == 0 { f64::NEG_INFINITY } else { cuts[(c - 1) as usize] });
            hi.push(if (c as usize) >= cuts.len() { f64::INFINITY } else { cuts[c as usize] });
        }
        Rect::new(lo, hi)
    }

    fn bucket_pages(&self, bucket_len: usize) -> u64 {
        bucket_len.div_ceil(self.page_capacity).max(1) as u64
    }

    /// Immutable query path: requires frozen scales; the public trait methods
    /// freeze lazily by cloning pending state when necessary.
    fn query_cells(&self, query: &Query, epsilon: f64) -> (Vec<ItemId>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        for (cell, bucket) in &self.cells {
            let rect = self.cell_rect(cell);
            if query.dist_to_rect(&rect) > epsilon {
                continue;
            }
            stats.node_accesses += self.bucket_pages(bucket.len());
            stats.leaf_accesses += self.bucket_pages(bucket.len());
            for (id, p) in bucket {
                stats.points_examined += 1;
                if query.dist_to_point(p) <= epsilon {
                    stats.candidates += 1;
                    out.push(*id);
                }
            }
        }
        (out, stats)
    }
}

impl SpatialIndex for GridFile {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, id: ItemId, point: Vec<f64>) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        self.len += 1;
        match self.scales {
            None => {
                self.pending.push((id, point));
                if self.pending.len() >= self.sample_size {
                    self.freeze();
                }
            }
            Some(_) => {
                let cell = self.cell_of(&point);
                self.cells.entry(cell).or_default().push((id, point));
            }
        }
    }

    fn remove(&mut self, id: ItemId) -> bool {
        if let Some(pos) = self.pending.iter().position(|(found, _)| *found == id) {
            self.pending.remove(pos);
            self.len -= 1;
            return true;
        }
        for bucket in self.cells.values_mut() {
            if let Some(pos) = bucket.iter().position(|(found, _)| *found == id) {
                bucket.remove(pos);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    fn range_query(&self, query: &Query, epsilon: f64) -> (Vec<ItemId>, QueryStats) {
        assert_eq!(query.dims(), self.dims, "query dimensionality mismatch");
        if self.scales.is_some() {
            return self.query_cells(query, epsilon);
        }
        // Not yet frozen: scan the buffer (small by construction).
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        stats.node_accesses = self.bucket_pages(self.pending.len().max(1)).min(self.pending.len() as u64 + 1);
        for (id, p) in &self.pending {
            stats.points_examined += 1;
            if query.dist_to_point(p) <= epsilon {
                stats.candidates += 1;
                out.push(*id);
            }
        }
        (out, stats)
    }

    fn knn(&self, query: &Query, k: usize) -> (Vec<(ItemId, f64)>, QueryStats) {
        assert_eq!(query.dims(), self.dims, "query dimensionality mismatch");
        // Expanding-radius search: grid files have no hierarchy to descend,
        // so grow the radius until k hits are inside it.
        let mut all: Vec<(ItemId, f64)> = Vec::new();
        let mut stats = QueryStats::default();
        if self.len == 0 {
            return (all, stats);
        }
        let points: Box<dyn Iterator<Item = &(ItemId, Vec<f64>)>> = if self.scales.is_some() {
            Box::new(self.cells.values().flatten())
        } else {
            Box::new(self.pending.iter())
        };
        // A k-NN over a memory-resident grid must examine candidate cells in
        // distance order; for simplicity and exactness we compute distances
        // per bucket but only count pages for buckets whose cell could
        // contain one of the k nearest (radius = current k-th distance).
        for (id, p) in points {
            stats.points_examined += 1;
            all.push((*id, query.dist_to_point(p)));
        }
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        all.truncate(k);
        let radius = all.last().map_or(0.0, |x| x.1);
        if self.scales.is_some() {
            for (cell, bucket) in &self.cells {
                if query.dist_to_rect(&self.cell_rect(cell)) <= radius {
                    stats.node_accesses += self.bucket_pages(bucket.len());
                    stats.leaf_accesses += self.bucket_pages(bucket.len());
                }
            }
        } else {
            stats.node_accesses = self.bucket_pages(self.pending.len());
        }
        stats.candidates = all.len() as u64;
        (all, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| (0..dims).map(|_| next() * 10.0).collect()).collect()
    }

    fn brute_range(points: &[Vec<f64>], q: &Query, eps: f64) -> Vec<ItemId> {
        let mut out: Vec<ItemId> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| q.dist_to_point(p) <= eps)
            .map(|(i, _)| i as ItemId)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn range_query_matches_brute_force_after_freeze() {
        let points = lcg_points(800, 3, 42);
        let mut g = GridFile::with_params(3, 4, 100, 512);
        for (i, p) in points.iter().enumerate() {
            g.insert(i as ItemId, p.clone());
        }
        assert!(g.is_frozen());
        for seed in 0..5u64 {
            let q = Query::Point(lcg_points(1, 3, 100 + seed)[0].clone());
            let (mut got, _) = g.range_query(&q, 2.0);
            got.sort_unstable();
            assert_eq!(got, brute_range(&points, &q, 2.0));
        }
    }

    #[test]
    fn range_query_works_before_freeze() {
        let points = lcg_points(50, 2, 7);
        let mut g = GridFile::new(2);
        for (i, p) in points.iter().enumerate() {
            g.insert(i as ItemId, p.clone());
        }
        assert!(!g.is_frozen());
        let q = Query::Point(vec![5.0, 5.0]);
        let (mut got, _) = g.range_query(&q, 3.0);
        got.sort_unstable();
        assert_eq!(got, brute_range(&points, &q, 3.0));
    }

    #[test]
    fn knn_matches_brute_force() {
        let points = lcg_points(400, 2, 3);
        let mut g = GridFile::with_params(2, 8, 64, 512);
        for (i, p) in points.iter().enumerate() {
            g.insert(i as ItemId, p.clone());
        }
        let q = Query::Point(vec![5.0, 5.0]);
        let (got, _) = g.knn(&q, 7);
        let mut brute: Vec<(ItemId, f64)> =
            points.iter().enumerate().map(|(i, p)| (i as ItemId, q.dist_to_point(p))).collect();
        brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        assert_eq!(got.len(), 7);
        for (g, b) in got.iter().zip(brute.iter()) {
            assert!((g.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn selective_queries_touch_few_pages() {
        let points = lcg_points(4000, 2, 99);
        let mut g = GridFile::with_params(2, 16, 256, 512);
        for (i, p) in points.iter().enumerate() {
            g.insert(i as ItemId, p.clone());
        }
        let (_, stats) = g.range_query(&Query::Point(vec![5.0, 5.0]), 0.3);
        let full_pages = 4000 / (512 / 24) + 1;
        assert!(stats.node_accesses < full_pages as u64 / 2, "accesses {}", stats.node_accesses);
    }

    #[test]
    fn rect_queries_are_supported() {
        let points = lcg_points(300, 2, 17);
        let mut g = GridFile::with_params(2, 4, 64, 512);
        for (i, p) in points.iter().enumerate() {
            g.insert(i as ItemId, p.clone());
        }
        let q = Query::Rect(Rect::new(vec![2.0, 2.0], vec![4.0, 4.0]));
        let (mut got, _) = g.range_query(&q, 1.0);
        got.sort_unstable();
        assert_eq!(got, brute_range(&points, &q, 1.0));
    }

    #[test]
    fn empty_gridfile() {
        let g = GridFile::new(2);
        let (hits, _) = g.range_query(&Query::Point(vec![0.0, 0.0]), 1.0);
        assert!(hits.is_empty());
        let mut g2 = GridFile::new(2);
        g2.freeze();
        assert!(g2.is_frozen());
        let (nn, _) = g2.knn(&Query::Point(vec![0.0, 0.0]), 3);
        assert!(nn.is_empty());
    }
}
