//! An R\*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990).
//!
//! The backend used by the paper for its large-database experiments. This is
//! a main-memory implementation with page-size-derived fan-outs so that the
//! `node_accesses` counter corresponds to disk page reads, the metric
//! reported in Figs 9 and 10. All three R\* innovations are implemented:
//! overlap-minimizing `ChooseSubtree` at the leaf level, the topological
//! (margin-driven) split, and forced reinsertion on first overflow per level.

use std::collections::BinaryHeap;

use crate::query::Query;
use crate::rect::Rect;
use crate::stats::QueryStats;
use crate::{ItemId, SpatialIndex};

/// Fraction of entries evicted by forced reinsertion (the paper's p = 30 %).
const REINSERT_FRACTION: f64 = 0.3;
/// Minimum node fill as a fraction of the maximum (the R\* paper's 40 %).
const MIN_FILL_FRACTION: f64 = 0.4;

/// A main-memory R\*-tree over `f64` points with page-access accounting.
#[derive(Debug, Clone)]
pub struct RStarTree {
    dims: usize,
    max_leaf: usize,
    min_leaf: usize,
    max_inner: usize,
    min_inner: usize,
    nodes: Vec<Node>,
    root: usize,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node {
    /// 0 for leaves; parents of leaves are level 1, and so on.
    level: u32,
    entries: Vec<Entry>,
}

#[derive(Debug, Clone)]
struct Entry {
    rect: Rect,
    data: EntryData,
}

#[derive(Debug, Clone)]
enum EntryData {
    /// Index of a child node in the arena.
    Child(usize),
    /// A stored point.
    Item { id: ItemId, point: Vec<f64> },
}

impl Entry {
    fn child(&self) -> usize {
        match self.data {
            EntryData::Child(c) => c,
            EntryData::Item { .. } => unreachable!("inner entry expected"),
        }
    }
}

impl RStarTree {
    /// Creates an empty tree with the default 4 KiB page size.
    pub fn new(dims: usize) -> Self {
        Self::with_page_size(dims, 4096)
    }

    /// Creates an empty tree whose node fan-outs are derived from a page
    /// size in bytes: a leaf entry stores a point plus an id, an inner entry
    /// stores a rectangle plus a child pointer.
    ///
    /// # Panics
    /// Panics if `dims == 0` or the page is too small to hold 4 entries.
    pub fn with_page_size(dims: usize, page_bytes: usize) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        let leaf_entry = dims * 8 + 8;
        let inner_entry = 2 * dims * 8 + 8;
        let max_leaf = (page_bytes / leaf_entry).max(4);
        let max_inner = (page_bytes / inner_entry).max(4);
        assert!(page_bytes / leaf_entry >= 4, "page too small for dims={dims}");
        let min_leaf = ((max_leaf as f64 * MIN_FILL_FRACTION) as usize).max(2);
        let min_inner = ((max_inner as f64 * MIN_FILL_FRACTION) as usize).max(2);
        RStarTree {
            dims,
            max_leaf,
            min_leaf,
            max_inner,
            min_inner,
            nodes: vec![Node { level: 0, entries: Vec::new() }],
            root: 0,
            len: 0,
        }
    }

    /// Maximum entries per leaf node.
    pub fn leaf_capacity(&self) -> usize {
        self.max_leaf
    }

    /// Height of the tree (1 for a tree that is a single leaf).
    pub fn height(&self) -> usize {
        self.nodes[self.root].level as usize + 1
    }

    /// Total number of nodes (= pages occupied).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn capacity(&self, level: u32) -> usize {
        if level == 0 {
            self.max_leaf
        } else {
            self.max_inner
        }
    }

    fn min_fill(&self, level: u32) -> usize {
        if level == 0 {
            self.min_leaf
        } else {
            self.min_inner
        }
    }

    fn node_rect(&self, node: usize) -> Rect {
        let mut r = Rect::empty(self.dims);
        for e in &self.nodes[node].entries {
            r.union_in_place(&e.rect);
        }
        r
    }

    /// Inserts `entry` at tree level `level`, with `reinserted` tracking
    /// which levels already ran forced reinsertion during the current
    /// top-level insert.
    fn insert_at_level(&mut self, entry: Entry, level: u32, reinserted: &mut Vec<bool>) {
        // Descend from the root to the target level, remembering the path.
        let mut path = Vec::new();
        let mut node = self.root;
        while self.nodes[node].level > level {
            let child_pos = self.choose_subtree(node, &entry.rect);
            path.push((node, child_pos));
            node = self.nodes[node].entries[child_pos].child();
        }
        debug_assert_eq!(self.nodes[node].level, level);
        self.nodes[node].entries.push(entry);

        // Walk back up, fixing MBRs and handling overflow.
        self.handle_overflow(node, &path, reinserted);
    }

    /// Resolves a possible overflow at `node`, then tightens ancestor MBRs.
    fn handle_overflow(&mut self, node: usize, path: &[(usize, usize)], reinserted: &mut Vec<bool>) {
        let level = self.nodes[node].level;
        if self.nodes[node].entries.len() > self.capacity(level) {
            let lvl = level as usize;
            if reinserted.len() <= lvl {
                reinserted.resize(lvl + 1, false);
            }
            if node != self.root && !reinserted[lvl] {
                reinserted[lvl] = true;
                let evicted = self.pick_reinsert_victims(node);
                self.refresh_path_rects(path);
                for e in evicted {
                    self.insert_at_level(e, level, reinserted);
                }
                return;
            }
            let new_node = self.split(node);
            let new_rect = self.node_rect(new_node);
            if node == self.root {
                let old_rect = self.node_rect(node);
                let root_level = self.nodes[node].level + 1;
                let new_root = self.alloc(Node {
                    level: root_level,
                    entries: vec![
                        Entry { rect: old_rect, data: EntryData::Child(node) },
                        Entry { rect: new_rect, data: EntryData::Child(new_node) },
                    ],
                });
                self.root = new_root;
            } else {
                let (parent, pos) = *path.last().expect("non-root node has a parent");
                self.nodes[parent].entries[pos].rect = self.node_rect(node);
                self.nodes[parent]
                    .entries
                    .push(Entry { rect: new_rect, data: EntryData::Child(new_node) });
                self.handle_overflow(parent, &path[..path.len() - 1], reinserted);
                return;
            }
        }
        self.refresh_path_rects(path);
    }

    /// Tightens the MBRs stored along a root-to-node path (bottom-up).
    fn refresh_path_rects(&mut self, path: &[(usize, usize)]) {
        for &(parent, pos) in path.iter().rev() {
            let child = self.nodes[parent].entries[pos].child();
            self.nodes[parent].entries[pos].rect = self.node_rect(child);
        }
    }

    /// R\* ChooseSubtree: overlap-minimizing for parents of leaves, area-
    /// enlargement-minimizing above.
    fn choose_subtree(&self, node: usize, rect: &Rect) -> usize {
        let n = &self.nodes[node];
        debug_assert!(n.level > 0);
        let leaf_parent = n.level == 1;
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, e) in n.entries.iter().enumerate() {
            let enlarged = e.rect.union(rect);
            let area = e.rect.area();
            let enlargement = enlarged.area() - area;
            let key = if leaf_parent {
                // Overlap enlargement against sibling entries.
                let mut overlap_delta = 0.0;
                for (j, s) in n.entries.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    overlap_delta += enlarged.overlap_area(&s.rect) - e.rect.overlap_area(&s.rect);
                }
                (overlap_delta, enlargement, area)
            } else {
                (enlargement, area, 0.0)
            };
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// Removes the p·M entries of `node` farthest from its center, returning
    /// them sorted closest-first (the R\* "close reinsert").
    fn pick_reinsert_victims(&mut self, node: usize) -> Vec<Entry> {
        let center = self.node_rect(node).center();
        let count =
            ((self.nodes[node].entries.len() as f64 * REINSERT_FRACTION) as usize).max(1);
        let n = &mut self.nodes[node];
        let mut order: Vec<usize> = (0..n.entries.len()).collect();
        let dist = |e: &Entry| -> f64 {
            let c = e.rect.center();
            c.iter().zip(&center).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        order.sort_by(|&a, &b| {
            dist(&n.entries[a]).partial_cmp(&dist(&n.entries[b])).expect("finite distances")
        });
        let victims: Vec<usize> = order[order.len() - count..].to_vec();
        let mut keep_mask = vec![true; n.entries.len()];
        for &v in &victims {
            keep_mask[v] = false;
        }
        let mut evicted = Vec::with_capacity(count);
        let mut kept = Vec::with_capacity(n.entries.len() - count);
        for (i, e) in n.entries.drain(..).enumerate() {
            if keep_mask[i] {
                kept.push(e);
            } else {
                evicted.push(e);
            }
        }
        n.entries = kept;
        // Close reinsert: nearest evicted entries go back in first.
        evicted.sort_by(|a, b| dist(a).partial_cmp(&dist(b)).expect("finite distances"));
        evicted
    }

    /// R\* topological split. Returns the index of the freshly allocated
    /// sibling node (same level), which receives the second group.
    fn split(&mut self, node: usize) -> usize {
        let level = self.nodes[node].level;
        let min = self.min_fill(level);
        let entries = std::mem::take(&mut self.nodes[node].entries);
        let total = entries.len();
        debug_assert!(total >= 2 * min);

        // ChooseSplitAxis: minimize the sum of margins over all distributions.
        let mut best_axis = 0;
        let mut best_margin = f64::INFINITY;
        for axis in 0..self.dims {
            let mut order: Vec<usize> = (0..total).collect();
            order.sort_by(|&a, &b| {
                let (ra, rb) = (&entries[a].rect, &entries[b].rect);
                (ra.lo()[axis], ra.hi()[axis])
                    .partial_cmp(&(rb.lo()[axis], rb.hi()[axis]))
                    .expect("finite coordinates")
            });
            let mut margin_sum = 0.0;
            for split_at in min..=(total - min) {
                let (r1, r2) = group_rects(&entries, &order, split_at, self.dims);
                margin_sum += r1.margin() + r2.margin();
            }
            if margin_sum < best_margin {
                best_margin = margin_sum;
                best_axis = axis;
            }
        }

        // ChooseSplitIndex on the winning axis: minimize overlap, then area.
        let axis = best_axis;
        let mut order: Vec<usize> = (0..total).collect();
        order.sort_by(|&a, &b| {
            let (ra, rb) = (&entries[a].rect, &entries[b].rect);
            (ra.lo()[axis], ra.hi()[axis])
                .partial_cmp(&(rb.lo()[axis], rb.hi()[axis]))
                .expect("finite coordinates")
        });
        let mut best_split = min;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for split_at in min..=(total - min) {
            let (r1, r2) = group_rects(&entries, &order, split_at, self.dims);
            let key = (r1.overlap_area(&r2), r1.area() + r2.area());
            if key < best_key {
                best_key = key;
                best_split = split_at;
            }
        }

        let mut first = Vec::with_capacity(best_split);
        let mut second = Vec::with_capacity(total - best_split);
        let mut slots: Vec<Option<Entry>> = entries.into_iter().map(Some).collect();
        for (rank, &idx) in order.iter().enumerate() {
            let e = slots[idx].take().expect("each entry moved once");
            if rank < best_split {
                first.push(e);
            } else {
                second.push(e);
            }
        }
        self.nodes[node].entries = first;
        self.alloc(Node { level, entries: second })
    }

    fn alloc(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Bulk-loads a point set with the Sort-Tile-Recursive packing algorithm
    /// (Leutenegger et al., ICDE 1997): sort by the first coordinate, cut
    /// into vertical slabs, sort each slab by the next coordinate, recurse.
    /// Produces a fully packed tree — every node at maximum fill except the
    /// last of each level — which builds far faster than repeated insertion
    /// and usually queries at least as well.
    ///
    /// # Panics
    /// Panics if any point has the wrong dimensionality.
    pub fn bulk_load(dims: usize, page_bytes: usize, items: Vec<(ItemId, Vec<f64>)>) -> Self {
        let mut tree = RStarTree::with_page_size(dims, page_bytes);
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len();
        let entries: Vec<Entry> = items
            .into_iter()
            .map(|(id, point)| {
                assert_eq!(point.len(), dims, "point dimensionality mismatch");
                Entry { rect: Rect::from_point(&point), data: EntryData::Item { id, point } }
            })
            .collect();

        // Pack the leaf level, then repeatedly pack parent levels until one
        // node remains.
        tree.nodes.clear();
        let mut level = 0u32;
        let mut current = entries;
        loop {
            let capacity = tree.capacity(level);
            let node_ids = tree.pack_level(current, level, capacity);
            if node_ids.len() == 1 {
                tree.root = node_ids[0];
                break;
            }
            current = node_ids
                .into_iter()
                .map(|child| Entry {
                    rect: tree.node_rect(child),
                    data: EntryData::Child(child),
                })
                .collect();
            level += 1;
        }
        tree
    }

    /// Tiles one level's entries into packed nodes, returning their arena
    /// indices.
    fn pack_level(&mut self, mut entries: Vec<Entry>, level: u32, capacity: usize) -> Vec<usize> {
        let count = entries.len();
        let node_count = count.div_ceil(capacity);
        if node_count <= 1 {
            return vec![self.alloc(Node { level, entries })];
        }
        // STR: number of vertical slabs = ceil(sqrt(node_count)); sort by
        // the first center coordinate, slice, then sort each slab by the
        // second coordinate (for dims > 2 this pairwise tiling is the
        // standard practical simplification).
        let slabs = (node_count as f64).sqrt().ceil() as usize;
        let slab_len = count.div_ceil(slabs);
        sort_by_center(&mut entries, 0);
        let mut nodes = Vec::with_capacity(node_count);
        let mut rest = entries;
        while !rest.is_empty() {
            let take = slab_len.min(rest.len());
            let mut slab: Vec<Entry> = rest.drain(..take).collect();
            if self.dims > 1 {
                sort_by_center(&mut slab, 1);
            }
            while !slab.is_empty() {
                let chunk: Vec<Entry> = slab.drain(..capacity.min(slab.len())).collect();
                nodes.push(self.alloc(Node { level, entries: chunk }));
            }
        }
        nodes
    }

    /// Checks every structural invariant of the tree and returns the
    /// violations (empty = healthy). Intended for tests and debugging
    /// assertions after bulk mutation:
    ///
    /// * stored entry MBRs equal the actual bounds of their subtrees,
    /// * child levels decrease by exactly one per tree level,
    /// * node occupancy respects capacity (and minimum fill below the root),
    /// * every leaf sits at level 0 and `len` equals the stored item count.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut item_count = 0usize;
        self.validate_node(self.root, None, true, &mut item_count, &mut problems);
        if item_count != self.len {
            problems.push(format!("len says {} items, found {item_count}", self.len));
        }
        problems
    }

    fn validate_node(
        &self,
        node: usize,
        expected_rect: Option<&Rect>,
        is_root: bool,
        item_count: &mut usize,
        problems: &mut Vec<String>,
    ) {
        let n = &self.nodes[node];
        let actual = self.node_rect(node);
        if let Some(expected) = expected_rect {
            if expected != &actual {
                problems.push(format!("node {node}: stored MBR differs from actual bounds"));
            }
        }
        if n.entries.len() > self.capacity(n.level) {
            problems.push(format!(
                "node {node}: {} entries exceed capacity {}",
                n.entries.len(),
                self.capacity(n.level)
            ));
        }
        if !is_root && self.len > 0 && n.entries.len() < self.min_fill(n.level) {
            problems.push(format!(
                "node {node}: {} entries below minimum fill {}",
                n.entries.len(),
                self.min_fill(n.level)
            ));
        }
        for e in &n.entries {
            match &e.data {
                EntryData::Item { point, .. } => {
                    if n.level != 0 {
                        problems.push(format!("node {node}: item stored above leaf level"));
                    }
                    if point.len() != self.dims {
                        problems.push(format!("node {node}: item of wrong dimensionality"));
                    }
                    *item_count += 1;
                }
                EntryData::Child(child) => {
                    if n.level == 0 {
                        problems.push(format!("node {node}: child pointer inside a leaf"));
                        continue;
                    }
                    if self.nodes[*child].level + 1 != n.level {
                        problems.push(format!(
                            "node {node}: child {child} at level {} under level {}",
                            self.nodes[*child].level, n.level
                        ));
                    }
                    self.validate_node(*child, Some(&e.rect), false, item_count, problems);
                }
            }
        }
    }

    /// Removes the point stored under `id` (the first one, if duplicates
    /// share the id). Returns `true` if something was removed.
    ///
    /// Follows the classic R-tree `CondenseTree` protocol: locate the leaf,
    /// drop the entry, and if any node along the path underflows, dissolve
    /// it and reinsert its surviving entries at their original level. The
    /// root collapses when it is an inner node with a single child.
    pub fn remove(&mut self, id: ItemId) -> bool {
        let Some(path) = self.find_leaf(self.root, id, &mut Vec::new()) else {
            return false;
        };
        let leaf = *path.last().expect("path ends at the leaf");
        self.nodes[leaf]
            .entries
            .retain(|e| !matches!(&e.data, EntryData::Item { id: found, .. } if *found == id));
        self.len -= 1;

        // Walk back to the root, dissolving underfull nodes.
        let mut orphans: Vec<(u32, Vec<Entry>)> = Vec::new();
        for depth in (1..path.len()).rev() {
            let node = path[depth];
            let parent = path[depth - 1];
            let level = self.nodes[node].level;
            if self.nodes[node].entries.len() < self.min_fill(level) {
                let entries = std::mem::take(&mut self.nodes[node].entries);
                orphans.push((level, entries));
                self.nodes[parent].entries.retain(|e| e.child() != node);
            } else {
                let rect = self.node_rect(node);
                for e in &mut self.nodes[parent].entries {
                    if e.child() == node {
                        e.rect = rect.clone();
                    }
                }
            }
        }
        // Shrink a root that lost all but one child.
        while self.nodes[self.root].level > 0 && self.nodes[self.root].entries.len() == 1 {
            self.root = self.nodes[self.root].entries[0].child();
        }
        if self.nodes[self.root].level > 0 && self.nodes[self.root].entries.is_empty() {
            // All children dissolved: reset to an empty leaf root.
            self.nodes[self.root].level = 0;
        }
        for (level, entries) in orphans {
            let mut reinserted = Vec::new();
            for entry in entries {
                // Items reinsert at the leaf level; orphaned subtrees keep
                // their level.
                let target = if level == 0 { 0 } else { level };
                self.insert_at_level(entry, target, &mut reinserted);
            }
        }
        true
    }

    /// Depth-first search for the leaf containing `id`; returns the
    /// root-to-leaf node path.
    fn find_leaf(&self, node: usize, id: ItemId, path: &mut Vec<usize>) -> Option<Vec<usize>> {
        path.push(node);
        let n = &self.nodes[node];
        if n.level == 0 {
            let found = n
                .entries
                .iter()
                .any(|e| matches!(&e.data, EntryData::Item { id: found, .. } if *found == id));
            if found {
                return Some(path.clone());
            }
        } else {
            for e in &n.entries {
                if let Some(hit) = self.find_leaf(e.child(), id, path) {
                    return Some(hit);
                }
            }
        }
        path.pop();
        None
    }

    /// Yields candidates in ascending lower-bound (MINDIST) order; drives the
    /// optimal multi-step k-NN algorithm in the query engine.
    pub fn nearest_iter<'a>(&'a self, query: &'a Query) -> NearestIter<'a> {
        assert_eq!(query.dims(), self.dims, "query dimensionality mismatch");
        let mut heap = BinaryHeap::new();
        if self.len > 0 {
            heap.push(HeapEntry {
                dist: OrdF64(query.dist_to_rect(&self.node_rect(self.root))),
                kind: HeapKind::Node(self.root),
            });
        }
        NearestIter { tree: self, query, heap, stats: QueryStats::default() }
    }
}

/// Sorts entries by the center of the given axis.
fn sort_by_center(entries: &mut [Entry], axis: usize) {
    entries.sort_by(|a, b| {
        let ca = 0.5 * (a.rect.lo()[axis] + a.rect.hi()[axis]);
        let cb = 0.5 * (b.rect.lo()[axis] + b.rect.hi()[axis]);
        ca.partial_cmp(&cb).expect("finite coordinates")
    });
}

/// Bounding rectangles of the two groups induced by `split_at` in `order`.
fn group_rects(entries: &[Entry], order: &[usize], split_at: usize, dims: usize) -> (Rect, Rect) {
    let mut r1 = Rect::empty(dims);
    let mut r2 = Rect::empty(dims);
    for (rank, &idx) in order.iter().enumerate() {
        if rank < split_at {
            r1.union_in_place(&entries[idx].rect);
        } else {
            r2.union_in_place(&entries[idx].rect);
        }
    }
    (r1, r2)
}

impl SpatialIndex for RStarTree {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, id: ItemId, point: Vec<f64>) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        let entry = Entry { rect: Rect::from_point(&point), data: EntryData::Item { id, point } };
        let mut reinserted = Vec::new();
        self.insert_at_level(entry, 0, &mut reinserted);
        self.len += 1;
    }

    fn range_query(&self, query: &Query, epsilon: f64) -> (Vec<ItemId>, QueryStats) {
        assert_eq!(query.dims(), self.dims, "query dimensionality mismatch");
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        if self.len == 0 {
            return (out, stats);
        }
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            stats.node_accesses += 1;
            let n = &self.nodes[node];
            if n.level == 0 {
                stats.leaf_accesses += 1;
                for e in &n.entries {
                    if let EntryData::Item { id, point } = &e.data {
                        stats.points_examined += 1;
                        if query.dist_to_point(point) <= epsilon {
                            stats.candidates += 1;
                            out.push(*id);
                        }
                    }
                }
            } else {
                for e in &n.entries {
                    if query.dist_to_rect(&e.rect) <= epsilon {
                        stack.push(e.child());
                    }
                }
            }
        }
        (out, stats)
    }

    fn remove(&mut self, id: ItemId) -> bool {
        RStarTree::remove(self, id)
    }

    fn knn(&self, query: &Query, k: usize) -> (Vec<(ItemId, f64)>, QueryStats) {
        let mut iter = self.nearest_iter(query);
        // Clamp speculative preallocation: `k` may be attacker-controlled
        // (it arrives over the wire), and at most `len` hits exist anyway.
        let mut out = Vec::with_capacity(k.min(self.len));
        while out.len() < k {
            match iter.next() {
                Some(hit) => out.push(hit),
                None => break,
            }
        }
        let stats = iter.stats();
        (out, stats)
    }
}

/// Incremental nearest-neighbor traversal (Hjaltason & Samet).
pub struct NearestIter<'a> {
    tree: &'a RStarTree,
    query: &'a Query,
    heap: BinaryHeap<HeapEntry>,
    stats: QueryStats,
}

impl NearestIter<'_> {
    /// Access counters accumulated so far.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }
}

impl Iterator for NearestIter<'_> {
    type Item = (ItemId, f64);

    fn next(&mut self) -> Option<(ItemId, f64)> {
        while let Some(HeapEntry { dist, kind }) = self.heap.pop() {
            match kind {
                HeapKind::Item(id) => {
                    self.stats.candidates += 1;
                    return Some((id, dist.0));
                }
                HeapKind::Node(node) => {
                    // Popping a node = reading its page.
                    let n = &self.tree.nodes[node];
                    self.stats.node_accesses += 1;
                    if n.level == 0 {
                        self.stats.leaf_accesses += 1;
                        for e in &n.entries {
                            if let EntryData::Item { id, point } = &e.data {
                                self.stats.points_examined += 1;
                                self.heap.push(HeapEntry {
                                    dist: OrdF64(self.query.dist_to_point(point)),
                                    kind: HeapKind::Item(*id),
                                });
                            }
                        }
                    } else {
                        for e in &n.entries {
                            self.heap.push(HeapEntry {
                                dist: OrdF64(self.query.dist_to_rect(&e.rect)),
                                kind: HeapKind::Node(e.child()),
                            });
                        }
                    }
                }
            }
        }
        None
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: OrdF64,
    kind: HeapKind,
}

#[derive(Debug, PartialEq)]
enum HeapKind {
    Node(usize),
    Item(ItemId),
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by distance; break ties so items surface before nodes at
        // equal distance (cheaper, and required for iterator correctness when
        // a node MBR touches an item).
        other
            .dist
            .cmp(&self.dist)
            .then_with(|| match (&self.kind, &other.kind) {
                (HeapKind::Item(_), HeapKind::Node(_)) => std::cmp::Ordering::Greater,
                (HeapKind::Node(_), HeapKind::Item(_)) => std::cmp::Ordering::Less,
                _ => std::cmp::Ordering::Equal,
            })
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Total-order wrapper for finite distances.
#[derive(Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("distances must be finite")
    }
}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random points without external crates.
    fn lcg_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| (0..dims).map(|_| next() * 100.0).collect()).collect()
    }

    fn build(points: &[Vec<f64>]) -> RStarTree {
        let mut t = RStarTree::with_page_size(points[0].len(), 512);
        for (i, p) in points.iter().enumerate() {
            t.insert(i as ItemId, p.clone());
        }
        t
    }

    fn brute_range(points: &[Vec<f64>], q: &Query, eps: f64) -> Vec<ItemId> {
        let mut out: Vec<ItemId> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| q.dist_to_point(p) <= eps)
            .map(|(i, _)| i as ItemId)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn range_query_matches_brute_force_point_query() {
        let points = lcg_points(500, 3, 7);
        let tree = build(&points);
        assert_eq!(tree.len(), 500);
        for seed in 0..10u64 {
            let q = Query::Point(lcg_points(1, 3, 1000 + seed)[0].clone());
            let (mut got, stats) = tree.range_query(&q, 25.0);
            got.sort_unstable();
            assert_eq!(got, brute_range(&points, &q, 25.0));
            assert!(stats.node_accesses >= 1);
        }
    }

    #[test]
    fn range_query_matches_brute_force_rect_query() {
        let points = lcg_points(400, 4, 11);
        let tree = build(&points);
        let q = Query::Rect(Rect::new(vec![20.0; 4], vec![40.0; 4]));
        let (mut got, _) = tree.range_query(&q, 10.0);
        got.sort_unstable();
        assert_eq!(got, brute_range(&points, &q, 10.0));
    }

    #[test]
    fn knn_matches_brute_force() {
        let points = lcg_points(300, 2, 3);
        let tree = build(&points);
        let q = Query::Point(vec![50.0, 50.0]);
        let (got, _) = tree.knn(&q, 10);
        let mut brute: Vec<(ItemId, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (i as ItemId, q.dist_to_point(p)))
            .collect();
        brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        brute.truncate(10);
        assert_eq!(got.len(), 10);
        for (g, b) in got.iter().zip(&brute) {
            assert!((g.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn nearest_iter_is_monotonic_and_complete() {
        let points = lcg_points(200, 3, 5);
        let tree = build(&points);
        let q = Query::Point(vec![10.0, 90.0, 50.0]);
        let hits: Vec<(ItemId, f64)> = tree.nearest_iter(&q).collect();
        assert_eq!(hits.len(), 200);
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        let mut ids: Vec<ItemId> = hits.iter().map(|h| h.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn pruning_beats_full_scan_on_selective_queries() {
        let points = lcg_points(5000, 4, 23);
        let tree = build(&points);
        let q = Query::Point(vec![50.0; 4]);
        let (_, stats) = tree.range_query(&q, 5.0);
        assert!(
            (stats.points_examined as usize) < points.len() / 2,
            "expected pruning, examined {}",
            stats.points_examined
        );
    }

    #[test]
    fn empty_tree_queries() {
        let tree = RStarTree::new(2);
        let q = Query::Point(vec![0.0, 0.0]);
        let (hits, stats) = tree.range_query(&q, 1.0);
        assert!(hits.is_empty());
        assert_eq!(stats.node_accesses, 0);
        let (nn, _) = tree.knn(&q, 3);
        assert!(nn.is_empty());
    }

    #[test]
    fn duplicate_points_are_all_retrievable() {
        let mut tree = RStarTree::with_page_size(2, 512);
        for i in 0..50 {
            tree.insert(i, vec![1.0, 1.0]);
        }
        let (hits, _) = tree.range_query(&Query::Point(vec![1.0, 1.0]), 0.0);
        assert_eq!(hits.len(), 50);
    }

    #[test]
    fn height_grows_logarithmically() {
        let points = lcg_points(2000, 2, 9);
        let tree = build(&points);
        assert!(tree.height() >= 2);
        assert!(tree.height() <= 6, "height {} too tall", tree.height());
    }

    #[test]
    fn epsilon_zero_finds_exact_point() {
        let points = lcg_points(100, 3, 13);
        let tree = build(&points);
        let q = Query::Point(points[42].clone());
        let (hits, _) = tree.range_query(&q, 1e-9);
        assert!(hits.contains(&42));
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dims_panics() {
        let mut tree = RStarTree::new(3);
        tree.insert(0, vec![1.0, 2.0]);
    }

    #[test]
    fn bulk_load_answers_queries_identically_to_insertion() {
        let points = lcg_points(3000, 4, 17);
        let inserted = build(&points);
        let bulk = RStarTree::bulk_load(
            4,
            512,
            points.iter().enumerate().map(|(i, p)| (i as ItemId, p.clone())).collect(),
        );
        assert_eq!(bulk.len(), 3000);
        for seed in 0..6u64 {
            let q = Query::Point(lcg_points(1, 4, 400 + seed)[0].clone());
            let (mut a, _) = inserted.range_query(&q, 20.0);
            let (mut b, _) = bulk.range_query(&q, 20.0);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_load_packs_tighter_than_insertion() {
        let points = lcg_points(5000, 3, 29);
        let inserted = build(&points);
        let bulk = RStarTree::bulk_load(
            3,
            512,
            points.iter().enumerate().map(|(i, p)| (i as ItemId, p.clone())).collect(),
        );
        assert!(
            bulk.node_count() <= inserted.node_count(),
            "bulk {} vs inserted {}",
            bulk.node_count(),
            inserted.node_count()
        );
        assert!(bulk.height() <= inserted.height());
    }

    #[test]
    fn bulk_load_small_and_empty_sets() {
        let empty = RStarTree::bulk_load(2, 512, Vec::new());
        assert!(empty.is_empty());
        let (hits, _) = empty.range_query(&Query::Point(vec![0.0, 0.0]), 10.0);
        assert!(hits.is_empty());

        let one = RStarTree::bulk_load(2, 512, vec![(7, vec![1.0, 2.0])]);
        assert_eq!(one.len(), 1);
        let (hits, _) = one.range_query(&Query::Point(vec![1.0, 2.0]), 0.1);
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn remove_then_query_matches_brute_force() {
        let points = lcg_points(800, 3, 41);
        let mut tree = build(&points);
        // Remove every third point.
        let removed: Vec<ItemId> = (0..800).step_by(3).map(|i| i as ItemId).collect();
        for &id in &removed {
            assert!(tree.remove(id), "id {id} present");
        }
        assert_eq!(tree.len(), 800 - removed.len());
        // Removed ids are gone, the rest answer exactly.
        let q = Query::Point(vec![50.0, 50.0, 50.0]);
        let (mut got, _) = tree.range_query(&q, 100.0);
        got.sort_unstable();
        let expected: Vec<ItemId> =
            (0..800u64).filter(|i| i % 3 != 0).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn invariants_hold_after_inserts_removals_and_bulk_load() {
        let points = lcg_points(1500, 3, 61);
        let mut tree = build(&points);
        assert_eq!(tree.validate(), Vec::<String>::new(), "after inserts");
        for id in (0..1500).step_by(2) {
            tree.remove(id as ItemId);
        }
        assert_eq!(tree.validate(), Vec::<String>::new(), "after removals");

        let bulk = RStarTree::bulk_load(
            3,
            512,
            points.iter().enumerate().map(|(i, p)| (i as ItemId, p.clone())).collect(),
        );
        // Bulk loading packs nodes full; only MBR/level/den affinity checks
        // apply (the last node per level may be under-filled, which validate
        // tolerates only at the root — accept "below minimum fill" notes).
        let hard_problems: Vec<String> = bulk
            .validate()
            .into_iter()
            .filter(|p| !p.contains("below minimum fill"))
            .collect();
        assert_eq!(hard_problems, Vec::<String>::new(), "after bulk load");
    }

    #[test]
    fn remove_missing_id_is_a_noop() {
        let points = lcg_points(50, 2, 43);
        let mut tree = build(&points);
        assert!(!tree.remove(9999));
        assert_eq!(tree.len(), 50);
    }

    #[test]
    fn remove_everything_then_reuse() {
        let points = lcg_points(300, 2, 47);
        let mut tree = build(&points);
        for i in 0..300 {
            assert!(tree.remove(i as ItemId));
        }
        assert!(tree.is_empty());
        let (hits, _) = tree.range_query(&Query::Point(vec![0.0, 0.0]), 1e9);
        assert!(hits.is_empty());
        // The emptied tree accepts new points.
        for (i, p) in lcg_points(100, 2, 48).into_iter().enumerate() {
            tree.insert(i as ItemId, p);
        }
        assert_eq!(tree.len(), 100);
        let (hits, _) = tree.range_query(&Query::Point(vec![50.0, 50.0]), 1e9);
        assert_eq!(hits.len(), 100);
    }

    #[test]
    fn interleaved_inserts_and_removes_stay_consistent() {
        let mut tree = RStarTree::with_page_size(2, 512);
        let points = lcg_points(400, 2, 51);
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as ItemId, p.clone());
            if i % 5 == 4 {
                assert!(tree.remove((i - 2) as ItemId));
            }
        }
        let expected: Vec<ItemId> = (0..400u64)
            .filter(|i| !(*i >= 2 && (i + 2) % 5 == 4 && i + 2 < 400))
            .collect();
        assert_eq!(tree.len(), expected.len());
        let (mut got, _) = tree.range_query(&Query::Point(vec![50.0, 50.0]), 1e9);
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn bulk_loaded_tree_supports_further_inserts() {
        let points = lcg_points(200, 2, 31);
        let mut tree = RStarTree::bulk_load(
            2,
            512,
            points.iter().enumerate().map(|(i, p)| (i as ItemId, p.clone())).collect(),
        );
        for (i, p) in lcg_points(200, 2, 32).into_iter().enumerate() {
            tree.insert(1000 + i as ItemId, p);
        }
        assert_eq!(tree.len(), 400);
        let q = Query::Point(vec![50.0, 50.0]);
        let (hits, _) = tree.range_query(&q, 200.0);
        assert_eq!(hits.len(), 400);
    }
}
