//! Axis-aligned rectangles (minimum bounding rectangles).

/// An axis-aligned hyperrectangle `[lo, hi]` in `d` dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// Creates a rectangle from its lower and upper corners.
    ///
    /// # Panics
    /// Panics if the corners disagree in dimension or if any `lo > hi`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensions must agree");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l <= h, "lower corner must not exceed upper corner ({l} > {h})");
        }
        Rect { lo, hi }
    }

    /// The degenerate rectangle covering a single point.
    pub fn from_point(p: &[f64]) -> Self {
        Rect { lo: p.to_vec(), hi: p.to_vec() }
    }

    /// An "empty" rectangle that acts as the identity for [`Rect::union`]:
    /// every coordinate is `[+∞, -∞]`. Not a valid rectangle on its own.
    pub fn empty(dims: usize) -> Self {
        Rect { lo: vec![f64::INFINITY; dims], hi: vec![f64::NEG_INFINITY; dims] }
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Grows this rectangle (in place) to cover `other`.
    pub fn union_in_place(&mut self, other: &Rect) {
        debug_assert_eq!(self.dims(), other.dims());
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// The smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        let mut out = self.clone();
        out.union_in_place(other);
        out
    }

    /// Grows this rectangle (in place) to cover a point.
    pub fn extend_point(&mut self, p: &[f64]) {
        debug_assert_eq!(self.dims(), p.len());
        for (i, &v) in p.iter().enumerate() {
            if v < self.lo[i] {
                self.lo[i] = v;
            }
            if v > self.hi[i] {
                self.hi[i] = v;
            }
        }
    }

    /// Hypervolume (product of side lengths).
    pub fn area(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| (h - l).max(0.0)).product()
    }

    /// Sum of side lengths — the "margin" minimized by the R\* split.
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| (h - l).max(0.0)).sum()
    }

    /// Hypervolume of the intersection with `other` (zero if disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let mut area = 1.0;
        for i in 0..self.lo.len() {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if hi <= lo {
                return 0.0;
            }
            area *= hi - lo;
        }
        area
    }

    /// `true` if the rectangles share any point.
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo.iter().zip(&other.hi).all(|(l, h)| l <= h)
            && other.lo.iter().zip(&self.hi).all(|(l, h)| l <= h)
    }

    /// `true` if the point lies inside (boundary inclusive).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dims(), p.len());
        p.iter().zip(self.lo.iter().zip(&self.hi)).all(|(x, (l, h))| l <= x && x <= h)
    }

    /// Center point.
    pub fn center(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| 0.5 * (l + h)).collect()
    }

    /// Minimum Euclidean distance from a point to this rectangle (zero if the
    /// point is inside).
    pub fn min_dist_point(&self, p: &[f64]) -> f64 {
        self.min_dist_point_sq(p).sqrt()
    }

    /// Squared version of [`Rect::min_dist_point`].
    pub fn min_dist_point_sq(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(self.dims(), p.len());
        let mut acc = 0.0;
        for (i, &v) in p.iter().enumerate() {
            let d = if v < self.lo[i] {
                self.lo[i] - v
            } else if v > self.hi[i] {
                v - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Minimum Euclidean distance between two rectangles (zero if they
    /// intersect).
    pub fn min_dist_rect(&self, other: &Rect) -> f64 {
        self.min_dist_rect_sq(other).sqrt()
    }

    /// Squared version of [`Rect::min_dist_rect`].
    pub fn min_dist_rect_sq(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let mut acc = 0.0;
        for i in 0..self.lo.len() {
            let d = if other.hi[i] < self.lo[i] {
                self.lo[i] - other.hi[i]
            } else if other.lo[i] > self.hi[i] {
                other.lo[i] - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn area_and_margin() {
        let a = r(&[0.0, 0.0], &[2.0, 3.0]);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(Rect::from_point(&[1.0, 1.0]).area(), 0.0);
    }

    #[test]
    fn union_covers_both() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[2.0, -1.0], &[3.0, 0.5]);
        let u = a.union(&b);
        assert_eq!(u, r(&[0.0, -1.0], &[3.0, 1.0]));
        assert!(u.intersects(&a) && u.intersects(&b));
    }

    #[test]
    fn empty_is_union_identity() {
        let mut e = Rect::empty(2);
        let a = r(&[1.0, 2.0], &[3.0, 4.0]);
        e.union_in_place(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn overlap_area_cases() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        let b = r(&[1.0, 1.0], &[3.0, 3.0]);
        let c = r(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(a.overlap_area(&b), 1.0);
        assert_eq!(a.overlap_area(&c), 0.0);
        assert_eq!(a.overlap_area(&a), 4.0);
    }

    #[test]
    fn intersects_is_symmetric_and_boundary_inclusive() {
        let a = r(&[0.0], &[1.0]);
        let b = r(&[1.0], &[2.0]);
        let c = r(&[1.5], &[2.0]);
        assert!(a.intersects(&b) && b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn point_containment() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(a.contains_point(&[0.5, 0.5]));
        assert!(a.contains_point(&[1.0, 0.0]));
        assert!(!a.contains_point(&[1.1, 0.5]));
    }

    #[test]
    fn min_dist_point_inside_edge_and_corner() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        assert_eq!(a.min_dist_point(&[1.0, 1.0]), 0.0);
        assert_eq!(a.min_dist_point(&[3.0, 1.0]), 1.0);
        assert!((a.min_dist_point(&[5.0, 6.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_dist_rect_cases() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[4.0, 5.0], &[6.0, 7.0]);
        assert!((a.min_dist_rect(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.min_dist_rect(&a), 0.0);
        let touching = r(&[1.0, 0.0], &[2.0, 1.0]);
        assert_eq!(a.min_dist_rect(&touching), 0.0);
    }

    #[test]
    fn extend_point_grows_box() {
        let mut a = Rect::from_point(&[1.0, 1.0]);
        a.extend_point(&[-1.0, 2.0]);
        assert_eq!(a, r(&[-1.0, 1.0], &[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "lower corner")]
    fn inverted_corners_panic() {
        let _ = r(&[1.0], &[0.0]);
    }
}
