//! Access accounting.
//!
//! The paper reports "# of candidates" and "# of page accesses" as
//! implementation-bias-free proxies for CPU and IO cost (§5.3). One index
//! node corresponds to one disk page, so `node_accesses` is the page-access
//! count.

/// Counters collected during a single index operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Index nodes (= disk pages) read during the search.
    pub node_accesses: u64,
    /// Leaf-level nodes among those accesses.
    pub leaf_accesses: u64,
    /// Stored points whose exact feature distance was evaluated.
    pub points_examined: u64,
    /// Points that satisfied the index-level predicate (the candidate set
    /// handed to the exact-DTW refinement step).
    pub candidates: u64,
}

impl QueryStats {
    /// Page accesses for the operation — the paper's IO-cost proxy (one
    /// index node = one disk page).
    pub fn pages(&self) -> u64 {
        self.node_accesses
    }

    /// Fraction of `total_points` that survived the index-level predicate —
    /// the candidate ratio the paper plots in Figs. 8–9. Returns 0 for an
    /// empty database.
    pub fn selectivity(&self, total_points: u64) -> f64 {
        if total_points == 0 {
            0.0
        } else {
            self.candidates as f64 / total_points as f64
        }
    }

    /// Merges counters from another operation (for averaging over query
    /// batches).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.node_accesses += other.node_accesses;
        self.leaf_accesses += other.leaf_accesses;
        self.points_examined += other.points_examined;
        self.candidates += other.candidates;
    }
}

/// Running averages over a batch of queries, used by the experiment harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    total: QueryStats,
    queries: u64,
}

impl BatchStats {
    /// Adds one query's counters.
    pub fn record(&mut self, stats: &QueryStats) {
        self.total.absorb(stats);
        self.queries += 1;
    }

    /// Number of recorded queries.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Mean candidate count per query.
    pub fn mean_candidates(&self) -> f64 {
        self.mean(self.total.candidates)
    }

    /// Mean page (node) accesses per query.
    pub fn mean_node_accesses(&self) -> f64 {
        self.mean(self.total.node_accesses)
    }

    /// Mean points examined per query.
    pub fn mean_points_examined(&self) -> f64 {
        self.mean(self.total.points_examined)
    }

    fn mean(&self, v: u64) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            v as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_all_fields() {
        let mut a = QueryStats { node_accesses: 1, leaf_accesses: 1, points_examined: 5, candidates: 2 };
        let b = QueryStats { node_accesses: 3, leaf_accesses: 2, points_examined: 7, candidates: 1 };
        a.absorb(&b);
        assert_eq!(
            a,
            QueryStats { node_accesses: 4, leaf_accesses: 3, points_examined: 12, candidates: 3 }
        );
    }

    #[test]
    fn pages_and_selectivity_derive_from_counters() {
        let s = QueryStats { node_accesses: 6, leaf_accesses: 4, points_examined: 50, candidates: 5 };
        assert_eq!(s.pages(), 6);
        assert_eq!(s.selectivity(100), 0.05);
        assert_eq!(s.selectivity(0), 0.0);
    }

    #[test]
    fn batch_means() {
        let mut batch = BatchStats::default();
        batch.record(&QueryStats { node_accesses: 10, leaf_accesses: 4, points_examined: 100, candidates: 8 });
        batch.record(&QueryStats { node_accesses: 20, leaf_accesses: 6, points_examined: 200, candidates: 2 });
        assert_eq!(batch.queries(), 2);
        assert_eq!(batch.mean_node_accesses(), 15.0);
        assert_eq!(batch.mean_candidates(), 5.0);
        assert_eq!(batch.mean_points_examined(), 150.0);
    }

    #[test]
    fn empty_batch_is_zero() {
        let batch = BatchStats::default();
        assert_eq!(batch.mean_candidates(), 0.0);
        assert_eq!(batch.mean_node_accesses(), 0.0);
    }
}
