//! Query shapes.

use crate::rect::Rect;

/// The geometric shape a search is issued against.
///
/// A plain feature vector is a [`Query::Point`]. A query-*envelope* image
/// under a container-invariant transform is a feature-space box
/// ([`Query::Rect`]); the distance from an indexed point to that box is the
/// paper's lower bound on the true DTW distance (Theorem 1), so range and
/// k-NN searches against a `Rect` query are exactly the index phase of the
/// DTW-indexing scheme.
#[derive(Debug, Clone)]
pub enum Query {
    /// Nearest/range search around a point.
    Point(Vec<f64>),
    /// Nearest/range search around an axis-aligned box.
    Rect(Rect),
}

impl Query {
    /// Dimensionality of the query shape.
    pub fn dims(&self) -> usize {
        match self {
            Query::Point(p) => p.len(),
            Query::Rect(r) => r.dims(),
        }
    }

    /// Minimum distance from the query shape to a point.
    pub fn dist_to_point(&self, p: &[f64]) -> f64 {
        match self {
            Query::Point(q) => {
                debug_assert_eq!(q.len(), p.len());
                q.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
            }
            Query::Rect(r) => r.min_dist_point(p),
        }
    }

    /// Minimum distance from the query shape to a rectangle (MINDIST used to
    /// order/prune tree descent).
    pub fn dist_to_rect(&self, r: &Rect) -> f64 {
        match self {
            Query::Point(q) => r.min_dist_point(q),
            Query::Rect(q) => q.min_dist_rect(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_query_distances() {
        let q = Query::Point(vec![0.0, 0.0]);
        assert_eq!(q.dist_to_point(&[3.0, 4.0]), 5.0);
        let r = Rect::new(vec![1.0, 0.0], vec![2.0, 1.0]);
        assert_eq!(q.dist_to_rect(&r), 1.0);
    }

    #[test]
    fn rect_query_distances() {
        let q = Query::Rect(Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]));
        assert_eq!(q.dist_to_point(&[0.5, 0.5]), 0.0);
        assert_eq!(q.dist_to_point(&[1.0, 2.0]), 1.0);
        let far = Rect::new(vec![4.0, 1.0], vec![5.0, 2.0]);
        assert_eq!(q.dist_to_rect(&far), 3.0);
    }

    #[test]
    fn dims_reporting() {
        assert_eq!(Query::Point(vec![0.0; 8]).dims(), 8);
        assert_eq!(Query::Rect(Rect::empty(4)).dims(), 4);
    }
}
