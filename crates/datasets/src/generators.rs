//! Reusable signal-generation building blocks.
//!
//! The 24 families in [`crate::families`] are compositions of these
//! primitives: random walks, AR processes, resonators, sinusoids, steps,
//! bursts, and the Mackey-Glass chaotic system.

use rand::rngs::StdRng;
use rand::RngExt;

/// Standard normal deviate (Irwin-Hall sum of 12 uniforms — accurate to the
/// tails we care about and allocation-free).
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.random::<f64>()).sum();
    sum - 6.0
}

/// A Gaussian random walk with the given per-step volatility.
pub fn random_walk(len: usize, volatility: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut acc = 0.0;
    (0..len)
        .map(|_| {
            acc += volatility * gaussian(rng);
            acc
        })
        .collect()
}

/// A first-order autoregressive process `x_t = φ·x_{t−1} + σ·ε_t`.
pub fn ar1(len: usize, phi: f64, sigma: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut x = 0.0;
    (0..len)
        .map(|_| {
            x = phi * x + sigma * gaussian(rng);
            x
        })
        .collect()
}

/// A damped resonator: an AR(2) process tuned to oscillate near
/// `period` samples with damping `r ∈ (0, 1)`.
pub fn resonator(len: usize, period: f64, r: f64, sigma: f64, rng: &mut StdRng) -> Vec<f64> {
    let omega = 2.0 * std::f64::consts::PI / period;
    let a1 = 2.0 * r * omega.cos();
    let a2 = -r * r;
    let mut x1 = 0.0;
    let mut x2 = 0.0;
    (0..len)
        .map(|_| {
            let x = a1 * x1 + a2 * x2 + sigma * gaussian(rng);
            x2 = x1;
            x1 = x;
            x
        })
        .collect()
}

/// A sinusoid with the given period (in samples), amplitude, and phase.
pub fn sinusoid(len: usize, period: f64, amplitude: f64, phase: f64) -> Vec<f64> {
    let omega = 2.0 * std::f64::consts::PI / period;
    (0..len).map(|t| amplitude * (omega * t as f64 + phase).sin()).collect()
}

/// A piecewise-constant staircase: `segments` plateaus at Gaussian levels.
pub fn steps(len: usize, segments: usize, level_sigma: f64, rng: &mut StdRng) -> Vec<f64> {
    let segments = segments.max(1);
    let mut out = Vec::with_capacity(len);
    let seg_len = len.div_ceil(segments);
    for _ in 0..segments {
        let level = level_sigma * gaussian(rng);
        for _ in 0..seg_len {
            if out.len() == len {
                break;
            }
            out.push(level);
        }
    }
    out
}

/// A piecewise-linear path through `segments` random slopes.
pub fn piecewise_linear(len: usize, segments: usize, slope_sigma: f64, rng: &mut StdRng) -> Vec<f64> {
    let segments = segments.max(1);
    let seg_len = len.div_ceil(segments);
    let mut out = Vec::with_capacity(len);
    let mut level = 0.0;
    for _ in 0..segments {
        let slope = slope_sigma * gaussian(rng);
        for _ in 0..seg_len {
            if out.len() == len {
                break;
            }
            level += slope;
            out.push(level);
        }
    }
    out
}

/// Quiet Gaussian background with `bursts` high-energy oscillatory packets.
pub fn bursty(len: usize, bursts: usize, background: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut out: Vec<f64> = (0..len).map(|_| background * gaussian(rng)).collect();
    for _ in 0..bursts {
        let width = (len / 10).max(4);
        let start = rng.random_range(0..len.saturating_sub(width).max(1));
        let period = rng.random_range(4.0..12.0);
        let amp = 1.0 + rng.random::<f64>() * 2.0;
        for (i, v) in out[start..(start + width).min(len)].iter_mut().enumerate() {
            // Hann-windowed tone burst.
            let w = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * i as f64 / width as f64).cos());
            *v += amp * w * (2.0 * std::f64::consts::PI * i as f64 / period).sin();
        }
    }
    out
}

/// The Mackey-Glass delay system `x' = βx(t−τ)/(1+x(t−τ)^10) − γx`,
/// integrated with Euler steps; the classic chaotic benchmark series.
pub fn mackey_glass(len: usize, tau: usize, rng: &mut StdRng) -> Vec<f64> {
    let (beta, gamma, dt) = (0.2, 0.1, 1.0);
    let warmup = tau * 10;
    let mut history: Vec<f64> = Vec::with_capacity(warmup + len);
    // Random initial history keeps independent series on distinct orbits.
    for _ in 0..=tau {
        history.push(1.2 + 0.1 * gaussian(rng));
    }
    while history.len() < warmup + len {
        let t = history.len() - 1;
        let x = history[t];
        let x_tau = history[t - tau];
        let dx = beta * x_tau / (1.0 + x_tau.powi(10)) - gamma * x;
        history.push(x + dt * dx);
    }
    history[warmup..].to_vec()
}

/// Adds white Gaussian noise in place.
pub fn add_noise(series: &mut [f64], sigma: f64, rng: &mut StdRng) {
    for v in series {
        *v += sigma * gaussian(rng);
    }
}

/// Sums two equally long series elementwise.
pub fn mix(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn std_dev(a: &[f64]) -> f64 {
        let m = a.iter().sum::<f64>() / a.len() as f64;
        (a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64).sqrt()
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng(1);
        let xs: Vec<f64> = (0..5000).map(|_| gaussian(&mut r)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(m.abs() < 0.06, "mean {m}");
        assert!((std_dev(&xs) - 1.0).abs() < 0.06);
    }

    #[test]
    fn random_walk_variance_grows() {
        let mut r = rng(2);
        let w = random_walk(1000, 1.0, &mut r);
        // |x_t| should grow like sqrt(t) on average; the endpoint magnitude
        // is almost surely far from zero relative to one step.
        assert!(std_dev(&w[..100]) < std_dev(&w));
    }

    #[test]
    fn ar1_is_stationary_for_small_phi() {
        let mut r = rng(3);
        let x = ar1(5000, 0.5, 1.0, &mut r);
        // Stationary sd = sigma / sqrt(1 - phi^2) ≈ 1.1547.
        assert!((std_dev(&x[1000..]) - 1.1547).abs() < 0.15);
    }

    #[test]
    fn resonator_oscillates_near_target_period() {
        let mut r = rng(4);
        let x = resonator(2048, 32.0, 0.98, 0.1, &mut r);
        // Count zero crossings: a period-32 oscillation crosses ~128 times
        // over 2048 samples.
        let crossings = x.windows(2).filter(|w| w[0] < 0.0 && w[1] >= 0.0).count();
        assert!((40..=100).contains(&crossings), "crossings {crossings}");
    }

    #[test]
    fn sinusoid_period_is_exact() {
        let s = sinusoid(100, 25.0, 2.0, 0.0);
        assert!((s[0] - s[25]).abs() < 1e-9);
        assert!(s.iter().cloned().fold(f64::MIN, f64::max) <= 2.0 + 1e-12);
    }

    #[test]
    fn steps_has_requested_plateaus() {
        let mut r = rng(5);
        let s = steps(100, 5, 1.0, &mut r);
        assert_eq!(s.len(), 100);
        // 20-sample plateaus: adjacent equal within plateaus.
        assert_eq!(s[0], s[19]);
        assert_ne!(s[19], s[20]);
    }

    #[test]
    fn piecewise_linear_is_continuous() {
        let mut r = rng(6);
        let s = piecewise_linear(100, 4, 0.5, &mut r);
        let max_jump = s.windows(2).map(|w| (w[1] - w[0]).abs()).fold(f64::MIN, f64::max);
        assert!(max_jump < 3.0, "jump {max_jump}");
    }

    #[test]
    fn bursts_raise_local_energy() {
        let mut r = rng(7);
        let s = bursty(512, 3, 0.02, &mut r);
        let global_sd = std_dev(&s);
        assert!(global_sd > 0.05, "bursts should dominate background, sd={global_sd}");
    }

    #[test]
    fn mackey_glass_is_bounded_and_aperiodic() {
        let mut r = rng(8);
        let x = mackey_glass(1000, 17, &mut r);
        assert!(x.iter().all(|v| (0.0..3.0).contains(v)));
        // Chaotic: the series should not settle to a constant.
        assert!(std_dev(&x[500..]) > 0.05);
    }

    #[test]
    fn exact_length_even_when_segments_do_not_divide() {
        let mut r = rng(9);
        assert_eq!(steps(103, 7, 1.0, &mut r).len(), 103);
        assert_eq!(piecewise_linear(103, 7, 1.0, &mut r).len(), 103);
    }
}
