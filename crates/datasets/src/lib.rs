//! Synthetic stand-ins for the 24 benchmark datasets of the paper's
//! Figure 6 (drawn from the UCR Time Series Data Mining Archive), plus the
//! random-walk workload of Figures 7 and 10.
//!
//! The archive itself is not redistributable, so each family here is a
//! seeded parametric generator chosen to match the qualitative character of
//! its namesake: periodicity (sunspot, tide, soil temperature), trends and
//! level shifts (exchange rates, wool, shuttle), chaos (Mackey-Glass),
//! resonant noise (EEG), bursts (infrasound, burst), control-system
//! responses (CSTR, winding, dryer), and so on. What Fig 6 measures — mean
//! tightness of DTW lower bounds — depends on exactly these qualitative
//! properties (smoothness, periodicity, burstiness), which is why the
//! substitution preserves the experiment's discriminative power; see
//! DESIGN.md.
//!
//! All generators are deterministic in `(family, seed)` and produce
//! independent series per index.

pub mod families;
pub mod generators;

pub use families::{DatasetFamily, ALL_FAMILIES};
pub use generators::random_walk;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates `count` independent series of length `len` from a family.
///
/// Equal `(family, seed)` pairs produce identical data.
pub fn generate(family: DatasetFamily, count: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    generate_iter(family, count, len, seed).collect()
}

/// Streaming form of [`generate`]: yields the same `count` series in the
/// same order without materializing them all at once, so a 10^6-melody
/// build can insert-and-drop one series at a time.
///
/// Each series gets its own child seed derived from `(family, seed, index)`,
/// so count changes never reshuffle earlier series and
/// `generate_iter(f, n, l, s).collect()` equals `generate(f, n, l, s)`
/// exactly.
pub fn generate_iter(
    family: DatasetFamily,
    count: usize,
    len: usize,
    seed: u64,
) -> impl Iterator<Item = Vec<f64>> {
    (0..count).map(move |i| {
        let mut rng = StdRng::seed_from_u64(
            seed ^ (family as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ (i as u64).wrapping_mul(0xD1B54A32D192ED03),
        );
        family.generate_one(len, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(a: &[f64]) -> f64 {
        a.iter().sum::<f64>() / a.len() as f64
    }

    fn std_dev(a: &[f64]) -> f64 {
        let m = mean(a);
        (a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64).sqrt()
    }

    #[test]
    fn every_family_generates_finite_nonconstant_series() {
        for &family in ALL_FAMILIES {
            let series = generate(family, 3, 256, 7);
            assert_eq!(series.len(), 3);
            for s in &series {
                assert_eq!(s.len(), 256, "{family:?}");
                assert!(s.iter().all(|v| v.is_finite()), "{family:?} not finite");
                assert!(std_dev(s) > 1e-9, "{family:?} is constant");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for &family in ALL_FAMILIES {
            let a = generate(family, 2, 64, 42);
            let b = generate(family, 2, 64, 42);
            assert_eq!(a, b, "{family:?}");
        }
    }

    #[test]
    fn seeds_change_the_data() {
        for &family in ALL_FAMILIES {
            let a = generate(family, 1, 64, 1);
            let b = generate(family, 1, 64, 2);
            assert_ne!(a, b, "{family:?}");
        }
    }

    #[test]
    fn series_within_a_batch_are_independent() {
        let batch = generate(DatasetFamily::RandomWalk, 4, 128, 11);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(batch[i], batch[j]);
            }
        }
    }

    #[test]
    fn prefix_stability_under_count_growth() {
        // Asking for more series must not change the earlier ones.
        let small = generate(DatasetFamily::Eeg, 2, 64, 5);
        let large = generate(DatasetFamily::Eeg, 5, 64, 5);
        assert_eq!(small[0], large[0]);
        assert_eq!(small[1], large[1]);
    }

    #[test]
    fn streaming_iterator_matches_the_batch_form() {
        for &family in ALL_FAMILIES {
            let batch = generate(family, 4, 64, 9);
            let streamed: Vec<Vec<f64>> = generate_iter(family, 4, 64, 9).collect();
            assert_eq!(batch, streamed, "{family:?}");
        }
        // Lazy: a partially consumed iterator yields the same prefix, so
        // streaming consumers see exactly the batch corpus element-wise.
        let prefix: Vec<Vec<f64>> =
            generate_iter(DatasetFamily::RandomWalk, 1000, 64, 9).take(3).collect();
        assert_eq!(prefix, generate(DatasetFamily::RandomWalk, 3, 64, 9));
    }

    #[test]
    fn there_are_exactly_24_families() {
        assert_eq!(ALL_FAMILIES.len(), 24);
    }
}
