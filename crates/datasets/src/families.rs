//! The 24 dataset families of Figure 6.
//!
//! Ordering follows the paper's caption: 1.Sunspot, 2.Power,
//! 3.Spot Exrates, 4.Shuttle, 5.Water, 6.Chaotic, 7.Streamgen, 8.Ocean,
//! 9.Tide, 10.CSTR, 11.Winding, 12.Dryer2, 13.Ph Data, 14.Power Plant,
//! 15.Balleam, 16.Standard & Poor, 17.Soil Temp, 18.Wool, 19.Infrasound,
//! 20.EEG, 21.Koski EEG, 22.Buoy Sensor, 23.Burst, 24.Random walk.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::generators::{
    add_noise, ar1, bursty, gaussian, mackey_glass, mix, piecewise_linear, random_walk,
    resonator, sinusoid, steps,
};

/// One of the 24 benchmark families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetFamily {
    /// 1 — solar-cycle-like rectified oscillation.
    Sunspot,
    /// 2 — electricity demand: daily/weekly periodicity plus spikes.
    Power,
    /// 3 — currency spot exchange rates: low-noise random walk.
    SpotExrates,
    /// 4 — space-shuttle telemetry: plateaus with abrupt level shifts.
    Shuttle,
    /// 5 — water levels: seasonal cycle plus trend and noise.
    Water,
    /// 6 — Mackey-Glass chaotic series.
    Chaotic,
    /// 7 — synthetic stream generator: piecewise-linear drifts.
    Streamgen,
    /// 8 — ocean heights: narrowband swell.
    Ocean,
    /// 9 — tide gauges: two-frequency tidal mixture.
    Tide,
    /// 10 — continuous stirred-tank reactor: step responses with lag.
    Cstr,
    /// 11 — industrial winding process: damped oscillation plus noise.
    Winding,
    /// 12 — hair-dryer system identification data: low-pass filtered noise.
    Dryer2,
    /// 13 — pH titration: slow sigmoidal level transitions.
    PhData,
    /// 14 — power-plant output: trend plus periodicity plus AR noise.
    PowerPlant,
    /// 15 — ball-beam apparatus: smooth low-frequency wandering.
    Balleam,
    /// 16 — S&P index: random walk with volatility clustering.
    StandardPoor,
    /// 17 — soil temperature: strong seasonal plus diurnal harmonics.
    SoilTemp,
    /// 18 — wool prices: AR(1) around a drifting level.
    Wool,
    /// 19 — infrasound: amplitude-modulated packets.
    Infrasound,
    /// 20 — EEG: resonant (alpha-band-like) colored noise.
    Eeg,
    /// 21 — Koski EEG: smoother resonance with occasional spikes.
    KoskiEeg,
    /// 22 — moored-buoy sensor: seasonal drift plus outliers.
    BuoySensor,
    /// 23 — burst: quiet background with rare energetic packets.
    Burst,
    /// 24 — the pure Gaussian random walk of Figs 7 and 10.
    RandomWalk,
}

/// All families, in the paper's Fig 6 order.
pub const ALL_FAMILIES: &[DatasetFamily] = &[
    DatasetFamily::Sunspot,
    DatasetFamily::Power,
    DatasetFamily::SpotExrates,
    DatasetFamily::Shuttle,
    DatasetFamily::Water,
    DatasetFamily::Chaotic,
    DatasetFamily::Streamgen,
    DatasetFamily::Ocean,
    DatasetFamily::Tide,
    DatasetFamily::Cstr,
    DatasetFamily::Winding,
    DatasetFamily::Dryer2,
    DatasetFamily::PhData,
    DatasetFamily::PowerPlant,
    DatasetFamily::Balleam,
    DatasetFamily::StandardPoor,
    DatasetFamily::SoilTemp,
    DatasetFamily::Wool,
    DatasetFamily::Infrasound,
    DatasetFamily::Eeg,
    DatasetFamily::KoskiEeg,
    DatasetFamily::BuoySensor,
    DatasetFamily::Burst,
    DatasetFamily::RandomWalk,
];

impl DatasetFamily {
    /// The display name used in Fig 6 reports.
    pub fn name(self) -> &'static str {
        match self {
            DatasetFamily::Sunspot => "Sunspot",
            DatasetFamily::Power => "Power",
            DatasetFamily::SpotExrates => "Spot Exrates",
            DatasetFamily::Shuttle => "Shuttle",
            DatasetFamily::Water => "Water",
            DatasetFamily::Chaotic => "Chaotic",
            DatasetFamily::Streamgen => "Streamgen",
            DatasetFamily::Ocean => "Ocean",
            DatasetFamily::Tide => "Tide",
            DatasetFamily::Cstr => "CSTR",
            DatasetFamily::Winding => "Winding",
            DatasetFamily::Dryer2 => "Dryer2",
            DatasetFamily::PhData => "Ph Data",
            DatasetFamily::PowerPlant => "Power Plant",
            DatasetFamily::Balleam => "Balleam",
            DatasetFamily::StandardPoor => "Standard &Poor",
            DatasetFamily::SoilTemp => "Soil Temp",
            DatasetFamily::Wool => "Wool",
            DatasetFamily::Infrasound => "Infrasound",
            DatasetFamily::Eeg => "EEG",
            DatasetFamily::KoskiEeg => "Koski EEG",
            DatasetFamily::BuoySensor => "Buoy Sensor",
            DatasetFamily::Burst => "Burst",
            DatasetFamily::RandomWalk => "Random walk",
        }
    }

    /// The 1-based index used on the Fig 6 x-axis.
    pub fn figure_index(self) -> usize {
        ALL_FAMILIES.iter().position(|&f| f == self).expect("family listed") + 1
    }

    /// Generates one series of length `len` from this family.
    pub fn generate_one(self, len: usize, rng: &mut StdRng) -> Vec<f64> {
        match self {
            DatasetFamily::Sunspot => {
                // Rectified ~11-unit cycles with amplitude modulation.
                let phase = rng.random::<f64>() * std::f64::consts::TAU;
                let cycle = sinusoid(len, len as f64 / 4.0, 1.0, phase);
                let slow = sinusoid(len, len as f64 / 1.5, 0.4, phase * 0.7);
                let rectified: Vec<f64> = cycle
                    .iter()
                    .zip(&slow)
                    .map(|(c, s)| (c.max(0.0)).powf(1.3) * (1.0 + s))
                    .collect();
                let mut out = mix(&rectified, &random_walk(len, 0.03, rng));
                add_noise(&mut out, 0.06, rng);
                out
            }
            DatasetFamily::Power => {
                let phase = rng.random::<f64>() * std::f64::consts::TAU;
                let daily = sinusoid(len, len as f64 / 6.0, 1.0, phase);
                let weekly = sinusoid(len, len as f64 / 1.5, 0.7, phase * 1.3);
                let mut out = mix(&mix(&daily, &weekly), &random_walk(len, 0.04, rng));
                // Demand spikes.
                for _ in 0..len / 40 {
                    let at = rng.random_range(0..len);
                    out[at] += 1.5 + rng.random::<f64>();
                }
                add_noise(&mut out, 0.1, rng);
                out
            }
            DatasetFamily::SpotExrates => random_walk(len, 0.05, rng),
            DatasetFamily::Shuttle => {
                let mut out = steps(len, 6, 2.0, rng);
                add_noise(&mut out, 0.05, rng);
                out
            }
            DatasetFamily::Water => {
                let phase = rng.random::<f64>() * std::f64::consts::TAU;
                let seasonal = sinusoid(len, len as f64 / 3.0, 1.0, phase);
                // One slope per series (a per-sample sign would be noise,
                // not a trend).
                let slope = (0.5 + rng.random::<f64>()) * gaussian(rng).signum();
                let trend: Vec<f64> = (0..len).map(|t| slope * t as f64 / len as f64).collect();
                let mut out = mix(&seasonal, &trend);
                add_noise(&mut out, 0.15, rng);
                out
            }
            DatasetFamily::Chaotic => mackey_glass(len, 17, rng),
            DatasetFamily::Streamgen => {
                let mut out = piecewise_linear(len, 8, 0.2, rng);
                add_noise(&mut out, 0.1, rng);
                out
            }
            DatasetFamily::Ocean => {
                let swell = resonator(len, 32.0, 0.97, 0.08, rng);
                let wander = random_walk(len, 0.08, rng);
                mix(&swell, &wander)
            }
            DatasetFamily::Tide => {
                let phase = rng.random::<f64>() * std::f64::consts::TAU;
                let semidiurnal = sinusoid(len, len as f64 / 8.0, 0.7, phase);
                let diurnal = sinusoid(len, len as f64 / 4.0, 0.45, phase * 2.1);
                let spring_neap = sinusoid(len, len as f64 / 1.5, 1.0, phase * 0.3);
                let mut out = mix(&mix(&semidiurnal, &diurnal), &spring_neap);
                add_noise(&mut out, 0.05, rng);
                out
            }
            DatasetFamily::Cstr => {
                // First-order lag responses to random setpoint steps.
                let setpoints = steps(len, 5, 1.5, rng);
                let mut out = Vec::with_capacity(len);
                let mut x = 0.0;
                for sp in setpoints {
                    x += 0.08 * (sp - x) + 0.03 * gaussian(rng);
                    out.push(x);
                }
                out
            }
            DatasetFamily::Winding => {
                let osc = resonator(len, 40.0, 0.95, 0.08, rng);
                let drift = random_walk(len, 0.05, rng);
                mix(&osc, &drift)
            }
            DatasetFamily::Dryer2 => {
                // Two-pole low-pass filtered noise.
                let mut y1 = 0.0;
                let mut y2 = 0.0;
                (0..len)
                    .map(|_| {
                        let x = gaussian(rng);
                        y1 += 0.25 * (x - y1);
                        y2 += 0.25 * (y1 - y2);
                        y2 * 3.0
                    })
                    .collect()
            }
            DatasetFamily::PhData => {
                // Sigmoidal transitions between plateaus (titration curve).
                let levels = steps(len, 4, 2.0, rng);
                let mut out = Vec::with_capacity(len);
                let mut x = levels[0];
                for l in levels {
                    x += 0.12 * (l - x);
                    out.push(x + 0.02 * gaussian(rng));
                }
                out
            }
            DatasetFamily::PowerPlant => {
                let phase = rng.random::<f64>() * std::f64::consts::TAU;
                let periodic = sinusoid(len, len as f64 / 5.0, 0.8, phase);
                let noise = ar1(len, 0.95, 0.1, rng);
                let slope = (0.6 + 1.2 * rng.random::<f64>()) * gaussian(rng).signum();
                let trend: Vec<f64> = (0..len).map(|t| slope * t as f64 / len as f64).collect();
                mix(&mix(&periodic, &noise), &trend)
            }
            DatasetFamily::Balleam => {
                // Doubly integrated, lightly damped noise: very smooth.
                let mut v = 0.0;
                let mut x = 0.0;
                (0..len)
                    .map(|_| {
                        v = 0.98 * v + 0.05 * gaussian(rng);
                        x = 0.995 * x + v;
                        x
                    })
                    .collect()
            }
            DatasetFamily::StandardPoor => {
                // Random walk with volatility clustering (GARCH-flavored).
                let mut vol: f64 = 0.5;
                let mut acc = 0.0;
                (0..len)
                    .map(|_| {
                        let shock = gaussian(rng);
                        vol = (0.9 * vol + 0.1 * shock.abs()).clamp(0.1, 2.0);
                        acc += 0.05 * vol * shock;
                        acc
                    })
                    .collect()
            }
            DatasetFamily::SoilTemp => {
                let phase = rng.random::<f64>() * std::f64::consts::TAU;
                let seasonal = sinusoid(len, len as f64 / 2.0, 1.0, phase);
                let diurnal = sinusoid(len, len as f64 / 10.0, 0.2, phase * 3.3);
                let mut out = mix(&mix(&seasonal, &diurnal), &random_walk(len, 0.03, rng));
                add_noise(&mut out, 0.04, rng);
                out
            }
            DatasetFamily::Wool => {
                let base = ar1(len, 0.9, 0.15, rng);
                let drift = random_walk(len, 0.03, rng);
                mix(&base, &drift)
            }
            DatasetFamily::Infrasound => {
                mix(&bursty(len, 4, 0.05, rng), &random_walk(len, 0.04, rng))
            }
            DatasetFamily::Eeg => {
                let alpha = resonator(len, 24.0, 0.9, 0.25, rng);
                let broadband = ar1(len, 0.3, 0.2, rng);
                let baseline = random_walk(len, 0.06, rng);
                mix(&mix(&alpha, &broadband), &baseline)
            }
            DatasetFamily::KoskiEeg => {
                let mut out = mix(&resonator(len, 40.0, 0.95, 0.15, rng), &random_walk(len, 0.05, rng));
                for _ in 0..len / 100 {
                    let at = rng.random_range(0..len);
                    out[at] += 3.0 * gaussian(rng).signum();
                }
                out
            }
            DatasetFamily::BuoySensor => {
                let phase = rng.random::<f64>() * std::f64::consts::TAU;
                let seasonal = sinusoid(len, len as f64 / 2.5, 0.8, phase);
                let walk = random_walk(len, 0.05, rng);
                let mut out = mix(&seasonal, &walk);
                for _ in 0..len / 60 {
                    let at = rng.random_range(0..len);
                    out[at] += 2.5 * gaussian(rng);
                }
                out
            }
            DatasetFamily::Burst => {
                mix(&bursty(len, 2, 0.02, rng), &random_walk(len, 0.03, rng))
            }
            DatasetFamily::RandomWalk => random_walk(len, 1.0, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn one(family: DatasetFamily, len: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        family.generate_one(len, &mut rng)
    }

    fn autocorr(x: &[f64], lag: usize) -> f64 {
        let n = x.len();
        let m = x.iter().sum::<f64>() / n as f64;
        let var: f64 = x.iter().map(|v| (v - m) * (v - m)).sum();
        let cov: f64 = (0..n - lag).map(|i| (x[i] - m) * (x[i + lag] - m)).sum();
        cov / var.max(1e-12)
    }

    #[test]
    fn names_and_indices_follow_the_figure() {
        assert_eq!(DatasetFamily::Sunspot.figure_index(), 1);
        assert_eq!(DatasetFamily::RandomWalk.figure_index(), 24);
        assert_eq!(DatasetFamily::Cstr.name(), "CSTR");
        // All names distinct.
        let mut names: Vec<&str> = ALL_FAMILIES.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn smooth_families_have_high_lag1_autocorrelation() {
        for family in [DatasetFamily::Balleam, DatasetFamily::SpotExrates, DatasetFamily::PhData] {
            let s = one(family, 512, 3);
            assert!(autocorr(&s, 1) > 0.8, "{family:?}: {}", autocorr(&s, 1));
        }
    }

    #[test]
    fn periodic_families_show_their_period() {
        let tide = one(DatasetFamily::Tide, 512, 5);
        // Strong autocorrelation near the semidiurnal period (12.4 ≈ 12).
        assert!(autocorr(&tide, 12) > 0.3, "tide ac12 {}", autocorr(&tide, 12));
        let soil = one(DatasetFamily::SoilTemp, 512, 5);
        assert!(autocorr(&soil, 24) > 0.2, "soil ac24 {}", autocorr(&soil, 24));
    }

    #[test]
    fn bursty_families_have_heavy_peaks() {
        for family in [DatasetFamily::Burst, DatasetFamily::Infrasound] {
            let s = one(family, 512, 9);
            let sd = {
                let m = s.iter().sum::<f64>() / s.len() as f64;
                (s.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / s.len() as f64).sqrt()
            };
            let peak = s.iter().cloned().fold(f64::MIN, f64::max);
            assert!(peak > 3.0 * sd, "{family:?}: peak {peak} vs sd {sd}");
        }
    }

    #[test]
    fn shuttle_is_step_like() {
        let s = one(DatasetFamily::Shuttle, 240, 2);
        // Large jumps are rare, small moves dominate.
        let jumps = s.windows(2).filter(|w| (w[1] - w[0]).abs() > 1.0).count();
        assert!(jumps <= 8, "jumps {jumps}");
    }

    #[test]
    fn chaotic_stays_on_attractor() {
        let s = one(DatasetFamily::Chaotic, 1000, 7);
        assert!(s.iter().all(|v| (0.2..1.8).contains(v)), "Mackey-Glass range");
    }

    #[test]
    fn random_walk_has_unit_steps() {
        let s = one(DatasetFamily::RandomWalk, 2000, 1);
        let steps: Vec<f64> = s.windows(2).map(|w| w[1] - w[0]).collect();
        let sd = {
            let m = steps.iter().sum::<f64>() / steps.len() as f64;
            (steps.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / steps.len() as f64).sqrt()
        };
        assert!((sd - 1.0).abs() < 0.1, "step sd {sd}");
    }
}
